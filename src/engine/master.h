#ifndef TREESERVER_ENGINE_MASTER_H_
#define TREESERVER_ENGINE_MASTER_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/metrics_registry.h"
#include "concurrent/concurrent_hash_map.h"
#include "concurrent/plan_deque.h"
#include "engine/cost_model.h"
#include "engine/messages.h"
#include "engine/reliable.h"
#include "forest/forest.h"
#include "rpc/transport.h"
#include "table/data_table.h"

namespace treeserver {

/// Engine tuning knobs (Section III defaults).
struct EngineConfig {
  int num_workers = 4;
  int compers_per_worker = 4;
  /// k column replicas (k = 2 default: load balancing + fault
  /// tolerance).
  int replication = 2;
  /// τ_D: |D_x| at or below this becomes one subtree-task.
  uint64_t tau_d = 10000;
  /// τ_dfs: |D_x| at or below this switches to depth-first scheduling.
  uint64_t tau_dfs = 80000;
  /// Maximum trees under construction at any time.
  int npool = 200;
  /// Simulated per-endpoint link speed; 0 = unthrottled.
  double bandwidth_mbps = 0.0;
  /// Compress data-channel transfers (delta+varint row ids, bit-packed
  /// categorical values) — the compression extension the paper defers
  /// to future work. Off by default to match the paper's system.
  bool compress_transfers = false;
  /// Period of the engine stats reporter thread in milliseconds; 0
  /// (the default) disables the reporter. When enabled, an EngineStats
  /// snapshot is dumped to stderr every period and at job completion.
  int stats_period_ms = 0;
  /// Slow-task watchdog cadence; every period the master scans T_task
  /// and flags in-flight tasks older than
  /// max(watchdog_multiplier × rolling p99 of their kind,
  /// watchdog_min_us). 0 disables the watchdog thread.
  int watchdog_period_ms = 500;
  double watchdog_multiplier = 8.0;
  /// Floor under the watchdog threshold. Task age runs schedule ->
  /// completion, so it includes worker queue wait; the floor must sit
  /// above normal cold-start queueing (empty latency histograms make
  /// the p99 term useless early on) or healthy runs get flagged.
  uint64_t watchdog_min_us = 2000000;
  /// Test hooks: worker `debug_slow_worker` sleeps `debug_slow_task_ms`
  /// before computing each task, making it a deterministic straggler
  /// for the watchdog tests. -1 / 0 (defaults) disable the delay.
  int debug_slow_worker = -1;
  int debug_slow_task_ms = 0;
  uint64_t seed = 42;
  /// Reliable-delivery layer: first retransmit deadline for an
  /// unacked engine message, the exponential-backoff cap, and how many
  /// retransmits to attempt before giving a message up for dead.
  int ack_timeout_ms = 200;
  int ack_backoff_max_ms = 2000;
  int max_retransmits = 20;

  ReliableOptions ReliableConfig(uint32_t generation = 0) const {
    return ReliableOptions{ack_timeout_ms, ack_backoff_max_ms,
                           max_retransmits, generation};
  }
};

/// Point-in-time master-side statistics (part of EngineStats).
struct MasterStats {
  /// Plans queued in B_plan, waiting for worker assignment.
  size_t bplan_depth = 0;
  /// T_task entries, including completed delegates still serving I_x.
  size_t tasks_in_flight = 0;
  uint64_t column_tasks_in_flight = 0;
  uint64_t subtree_tasks_in_flight = 0;
  /// Tree-pool occupancy (trees under construction) vs its bound.
  int active_trees = 0;
  int npool = 0;
  size_t jobs_total = 0;
  size_t jobs_completed = 0;
  uint64_t tasks_scheduled = 0;
  uint64_t trees_completed = 0;
  uint64_t trees_restarted = 0;
  /// In-flight tasks the watchdog has flagged as stragglers.
  uint64_t slow_tasks = 0;
  /// Reliable-delivery health (process-wide registry counters):
  /// retransmitted engine messages, duplicates suppressed at the
  /// receive seams, stale-generation messages fenced, and CRC-failed
  /// reliable frames dropped.
  uint64_t retransmits = 0;
  uint64_t duplicate_msgs = 0;
  uint64_t fenced_msgs = 0;
  uint64_t corrupt_msgs = 0;
  /// Predicted per-worker load units from M_work (Section VI), to be
  /// compared against the actual per-worker bytes / busy-time.
  struct WorkerLoad {
    double comp = 0.0;
    double send = 0.0;
    double recv = 0.0;
  };
  std::vector<WorkerLoad> predicted_load;
};

/// The TreeServer master (Fig. 5 / Fig. 14(a)).
///
/// Owns the plan buffer B_plan (hybrid BFS/DFS deque), the task table
/// T_task, the load matrix M_work, the tree pool (n_pool), and the
/// progress table. Runs θ_main (plan fetch + worker assignment) and
/// θ_recv (task results -> split decisions -> child plans / tree
/// assembly). The master never touches row data: it sees only split
/// conditions and statistics.
class Master {
 public:
  Master(std::shared_ptr<const DataTable> table, Transport* network,
         const EngineConfig& config);
  ~Master();

  Master(const Master&) = delete;
  Master& operator=(const Master&) = delete;

  void Start();
  /// Requests loop exit and joins threads (queues closed by caller).
  void Stop();

  /// Enqueues a training job; trees begin construction as pool slots
  /// free up. Thread-safe.
  uint32_t Submit(const ForestJobSpec& spec);

  /// Blocks until the job completes and returns its forest.
  ForestModel Wait(uint32_t job_id);

  /// Fault tolerance: worker `w` is gone. Revokes and re-plans its
  /// in-flight tasks; trees whose parent-side row index I_x was lost
  /// restart from their root. Thread-safe.
  void OnWorkerCrash(int worker);

  /// Serializes the state the paper's secondary master keeps in sync
  /// (Appendix E): job specs, completed trees, worker liveness. Safe
  /// to call while training runs; in-flight trees are simply not in
  /// the snapshot and restart after a Restore.
  std::string Checkpoint();

  /// Loads a checkpoint into a fresh (not yet Start()ed) master: done
  /// trees are kept, unfinished ones will be re-admitted and retrained
  /// from scratch. Deterministic sampling makes the retrained trees
  /// identical to what the failed master would have produced.
  /// Bumps the fencing epoch past the checkpointed one, so messages
  /// from the previous master's generation are fenced at every
  /// receiver.
  Status Restore(const std::string& checkpoint);

  /// The fencing epoch this master stamps on outgoing messages
  /// (0 for a fresh master; checkpointed + 1 after Restore).
  uint32_t epoch() const { return epoch_; }

  /// Diagnostics.
  uint64_t tasks_scheduled() const { return tasks_scheduled_.value(); }
  uint64_t trees_completed() const { return trees_completed_.value(); }
  uint64_t trees_restarted() const { return trees_restarted_.value(); }
  const LoadMatrix& load_matrix() const { return load_; }
  const ColumnPlacement& placement() const { return placement_; }

  /// Snapshot of scheduler state (B_plan depth, tasks in flight by
  /// kind, tree-pool occupancy, predicted M_work load). Thread-safe;
  /// values are individually coherent, not a linearizable cut.
  MasterStats GetStats() const;

  /// Cross-rank trace aggregation: asks every live worker for a
  /// tracer snapshot (kTraceRequest on the low-priority trace
  /// channel). Returns the number of requests sent. Thread-safe, but
  /// only one collection may be in flight at a time.
  int RequestWorkerTraces();
  /// Blocks until every requested snapshot arrived (or timeout).
  bool WaitForWorkerTraces(int64_t timeout_ms);
  /// Hands over the snapshots collected so far and resets the
  /// collection state.
  std::vector<TraceSnapshotMsg> TakeWorkerTraces();

 private:
  /// A node-task not yet assigned to workers.
  struct Plan {
    uint32_t tree_id = 0;
    int32_t node_id = 0;
    int32_t depth = 0;
    uint64_t n_rows = 0;
    int32_t parent_worker = -1;
    uint64_t parent_task = 0;
    uint8_t side = 0;
    int et_retries = 0;  // extra-trees column resamples so far
  };

  /// T_task entry: a task in flight, or completed but still tracked as
  /// the delegate for its children's I_x (Section V).
  struct Entry {
    std::mutex mu;
    uint64_t task_id = 0;
    uint32_t tree_id = 0;
    int32_t node_id = 0;
    int32_t depth = 0;
    uint64_t n_rows = 0;
    bool is_subtree = false;
    int32_t parent_worker = -1;
    uint64_t parent_task = 0;
    uint8_t side = 0;
    int et_retries = 0;
    uint64_t sched_ns = 0;  // steady clock at SchedulePlan, for latency
    bool slow_flagged = false;  // watchdog already reported this task
    std::vector<int> workers;
    int key_worker = -1;
    int pending = 0;
    /// Workers whose column response was already folded in — a
    /// replayed response must not decrement `pending` twice.
    std::set<int> responded;
    SplitOutcome best;
    int best_worker = -1;
    TargetStats node_stats;
    bool have_stats = false;
    LoadDelta delta;
    // Delegate bookkeeping after completion.
    bool completed = false;
    int children_done = 0;
  };
  using EntryPtr = std::shared_ptr<Entry>;

  /// A tree under construction.
  struct TreeState {
    uint32_t tree_id = 0;
    uint32_t job_id = 0;
    int tree_index = 0;
    TreeModel model;
    std::vector<int> candidates;
    TaskContext ctx;
    int pending = 0;  // unfinished node constructions (T_prog)
    Rng rng;          // extra-trees per-task seeds
  };

  struct JobState {
    ForestJobSpec spec;
    std::vector<TreeModel> trees;
    int admitted = 0;
    int done = 0;
    bool completed = false;
  };

  void MainLoop();
  void RecvLoop();
  void WatchdogLoop();
  void HandleTraceSnapshot(const std::string& payload);

  // θ_main helpers (master_mu_ NOT held unless stated).
  void AdmitTrees();  // requires master_mu_
  void SchedulePlan(const Plan& plan);

  // θ_recv helpers.
  void HandleColumnResponse(const std::string& payload);
  void HandleSubtreeResult(const std::string& payload);
  void HandleWorkerCrash(int worker);
  void ProcessNodeCompletion(const EntryPtr& entry);
  /// Finalizes a node as a leaf in the tree model. Requires master_mu_.
  void FinalizeLeaf(TreeState* tree, int32_t node_id, int depth,
                    const TargetStats& stats);
  /// Decrements the tree's pending count; flushes the tree when done.
  /// Requires master_mu_.
  void TaskFinished(uint32_t tree_id);
  /// Requires master_mu_ NOT held.
  void NotifyChildDone(uint64_t parent_task);
  void SendToWorker(int worker, MsgType type, std::string payload,
                    uint64_t trace_id = 0);
  void InsertPlan(const Plan& plan);  // B_plan head/tail by τ_dfs
  /// Records a completed task's schedule→completion latency and emits
  /// the trace async-end of its lifecycle.
  void ObserveTaskCompletion(const EntryPtr& entry);

  bool LeafByStats(const TargetStats& stats, int depth,
                   const TaskContext& ctx) const;

  const std::shared_ptr<const DataTable> table_;
  Transport* const network_;
  const EngineConfig config_;
  /// Ack/retransmit + dedup/fencing layer over network_; every
  /// reliable-type send and the θ_recv loop route through it.
  ReliableLink link_;
  /// Fencing epoch (generation) stamped into reliable sends.
  uint32_t epoch_ = 0;

  ColumnPlacement placement_;
  LoadMatrix load_;
  std::vector<bool> alive_;

  PlanDeque<Plan> bplan_;
  ConcurrentHashMap<uint64_t, EntryPtr> ttask_;
  std::atomic<uint64_t> next_task_id_{1};

  // Tree/job state, guarded by master_mu_.
  mutable std::mutex master_mu_;
  std::condition_variable job_cv_;
  std::map<uint32_t, TreeState> trees_;
  std::map<uint32_t, JobState> jobs_;
  std::deque<uint32_t> job_order_;
  uint32_t next_tree_id_ = 1;
  uint32_t next_job_id_ = 1;
  int active_trees_ = 0;

  Counter tasks_scheduled_;
  Counter trees_completed_;
  Counter trees_restarted_;

  // Shared-registry metrics (process-wide, survive the master).
  Histogram* const task_latency_us_;   // schedule -> completion
  Histogram* const bplan_depth_;       // sampled at every insert
  // Per-kind latency histograms: the watchdog compares each in-flight
  // task's age against its own kind's rolling p99.
  Histogram* const column_latency_us_;
  Histogram* const subtree_latency_us_;
  Counter* const slow_tasks_;          // "engine.slow_tasks"
  Counter* const sched_counter_;       // "engine.tasks_scheduled"
  Counter* const dup_msgs_;            // "engine.duplicate_tasks"

  // Trace collection (guarded by trace_mu_).
  std::mutex trace_mu_;
  std::condition_variable trace_cv_;
  std::vector<TraceSnapshotMsg> worker_traces_;
  size_t trace_expected_ = 0;

  std::atomic<bool> stop_{false};
  std::atomic<bool> stopped_{false};  // Stop() runs once
  std::thread main_thread_;
  std::thread recv_thread_;
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  std::thread watchdog_thread_;
};

}  // namespace treeserver

#endif  // TREESERVER_ENGINE_MASTER_H_
