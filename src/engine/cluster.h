#ifndef TREESERVER_ENGINE_CLUSTER_H_
#define TREESERVER_ENGINE_CLUSTER_H_

#include <memory>
#include <vector>

#include "engine/master.h"
#include "engine/worker.h"
#include "net/network.h"

namespace treeserver {

class StatsReporter;

/// Full engine observability snapshot: scheduler state from the
/// master, queue depths and busy time from every worker, per-endpoint
/// traffic and channel histograms from the network. The master's
/// predicted per-worker M_work load sits next to the actual bytes and
/// busy-time so scheduling imbalance is directly visible.
struct EngineStats {
  MasterStats master;
  std::vector<WorkerStats> workers;
  NetworkStats network;
  /// Current / peak worker task memory (I_x buffers + gathered D_x
  /// columns), summed over workers.
  int64_t task_memory_bytes = 0;
  int64_t task_memory_peak = 0;
};

/// Point-in-time engine statistics for the experiment harnesses.
struct EngineMetrics {
  /// Total bytes pushed through the simulated interconnect.
  uint64_t bytes_sent_total = 0;
  /// Aggregate comper busy time across all workers, in seconds.
  double comper_busy_seconds = 0.0;
  /// High-water mark of worker task memory (I_x buffers + gathered
  /// D_x columns), in bytes, summed over workers.
  int64_t peak_task_memory_bytes = 0;
  uint64_t tasks_scheduled = 0;
  uint64_t trees_completed = 0;
  uint64_t trees_restarted = 0;
};

/// The user-facing TreeServer system: one master plus N simulated
/// worker machines sharing an in-process network (Fig. 2).
///
/// Construction loads the table: feature columns are partitioned among
/// workers with `replication` copies each, Y goes everywhere. Jobs are
/// submitted to the master and return forests; any number of jobs can
/// be in flight (the master mixes their trees in one task pool).
class TreeServerCluster {
 public:
  TreeServerCluster(DataTable table, EngineConfig config);
  ~TreeServerCluster();

  TreeServerCluster(const TreeServerCluster&) = delete;
  TreeServerCluster& operator=(const TreeServerCluster&) = delete;

  /// Enqueues a job; returns a handle for Wait().
  uint32_t Submit(const ForestJobSpec& spec) { return master_->Submit(spec); }

  /// Blocks until the job completes. Dumps an engine stats report at
  /// completion when the stats reporter is enabled.
  ForestModel Wait(uint32_t job_id);

  /// Submit + Wait.
  ForestModel TrainForest(const ForestJobSpec& spec) {
    return Wait(Submit(spec));
  }

  /// Simulates a machine failure: the worker stops responding and the
  /// master re-plans / restarts the affected work.
  void CrashWorker(int worker);

  /// Simulates a master failure with a secondary master taking over
  /// (Appendix E): the old master's periodic checkpoint (job specs +
  /// completed trees) seeds a fresh master; workers drop all task
  /// state and unfinished trees are retrained. Must not run
  /// concurrently with Wait() on this cluster — re-issue Wait() after
  /// the failover (job ids remain valid).
  void FailoverMaster();

  EngineMetrics metrics() const;
  /// Clears traffic/busy counters (between benchmark phases).
  void ResetMetrics();

  /// Full observability snapshot across master, workers, and network.
  EngineStats GetEngineStats() const;

  const EngineConfig& config() const { return config_; }
  Network& network() { return *network_; }
  const Master& master() const { return *master_; }

 private:
  // Declaration order doubles as reverse destruction order: workers
  // (whose task objects reference the gauges) must die before the
  // gauges, the master, and the network.
  EngineConfig config_;
  std::shared_ptr<const DataTable> table_;
  std::unique_ptr<Network> network_;
  std::unique_ptr<PeakGauge> task_memory_;
  std::vector<std::unique_ptr<BusyClock>> busy_clocks_;
  std::unique_ptr<Master> master_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::unique_ptr<StatsReporter> stats_reporter_;
};

}  // namespace treeserver

#endif  // TREESERVER_ENGINE_CLUSTER_H_
