#include "engine/cost_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace treeserver {

ColumnPlacement::ColumnPlacement(const Schema& schema, int num_workers,
                                 int replication)
    : num_workers_(num_workers) {
  TS_CHECK(num_workers > 0);
  replication = std::clamp(replication, 1, num_workers);
  holders_.resize(schema.num_columns());
  int cursor = 0;
  for (int col = 0; col < schema.num_columns(); ++col) {
    if (col == schema.target_index()) continue;  // Y lives everywhere
    for (int r = 0; r < replication; ++r) {
      holders_[col].push_back((cursor + r) % num_workers);
    }
    ++cursor;
  }
}

std::vector<int> ColumnPlacement::RemoveWorker(int worker) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> lost;
  for (int col = 0; col < static_cast<int>(holders_.size()); ++col) {
    auto& h = holders_[col];
    auto it = std::find(h.begin(), h.end(), worker);
    if (it != h.end()) {
      h.erase(it);
      lost.push_back(col);
      TS_CHECK(!h.empty()) << "column " << col
                           << " lost all replicas; data is gone";
    }
  }
  return lost;
}

void ColumnPlacement::AddHolder(int column, int worker) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& h = holders_[column];
  if (std::find(h.begin(), h.end(), worker) == h.end()) h.push_back(worker);
}

void LoadMatrix::Apply(const LoadDelta& delta, double scale) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [w, a] : delta.add) {
    comp_[w] += scale * a[0];
    send_[w] += scale * a[1];
    recv_[w] += scale * a[2];
  }
}

std::array<double, 3> LoadMatrix::Get(int worker) const {
  std::lock_guard<std::mutex> lock(mu_);
  return {comp_[worker], send_[worker], recv_[worker]};
}

void LoadMatrix::ClearWorker(int worker) {
  std::lock_guard<std::mutex> lock(mu_);
  comp_[worker] = send_[worker] = recv_[worker] = 0.0;
}

LoadMatrix::ColumnAssignment LoadMatrix::AssignColumnTask(
    const ColumnPlacement& placement, const std::vector<int>& columns,
    uint64_t n_rows, int parent_worker, const std::vector<bool>& alive) {
  std::lock_guard<std::mutex> lock(mu_);
  ColumnAssignment out;
  const double n = static_cast<double>(n_rows);

  for (int col : columns) {
    int best = -1;
    double best_score = std::numeric_limits<double>::infinity();
    for (int j : placement.holders(col)) {
      if (!alive[static_cast<size_t>(j)]) continue;
      const bool first = out.worker_columns.find(j) == out.worker_columns.end();
      // Updates (1)+(2) of Section VI apply only on the worker's first
      // column of this task (I_x is pulled once per worker); the root
      // task has no I_x transfer at all.
      double recv_j = recv_[j];
      double send_pa =
          parent_worker >= 0 ? send_[parent_worker] : 0.0;
      if (first && parent_worker >= 0) {
        recv_j += n;
        send_pa += n;
      }
      // Communication dominates column-tasks: balance max of the two
      // transfer loads; break ties toward lower compute then lower id.
      double score = std::max(recv_j, send_pa);
      double comp_tiebreak = comp_[j] + n;
      if (best < 0 || score < best_score ||
          (score == best_score && comp_tiebreak < comp_[best] + n)) {
        best = j;
        best_score = score;
      }
    }
    TS_CHECK(best >= 0) << "no live holder for column " << col;

    const bool first =
        out.worker_columns.find(best) == out.worker_columns.end();
    if (first && parent_worker >= 0) {
      recv_[best] += n;
      out.delta.Add(best, 0, 0, n);
      send_[parent_worker] += n;
      out.delta.Add(parent_worker, 0, n, 0);
    }
    comp_[best] += n;  // one-pass examination cost per column
    out.delta.Add(best, n, 0, 0);
    out.worker_columns[best].push_back(col);
  }
  return out;
}

LoadMatrix::SubtreeAssignment LoadMatrix::AssignSubtreeTask(
    const ColumnPlacement& placement, const std::vector<int>& columns,
    uint64_t n_rows, int parent_worker, const std::vector<bool>& alive) {
  std::lock_guard<std::mutex> lock(mu_);
  SubtreeAssignment out;
  const double n = static_cast<double>(std::max<uint64_t>(n_rows, 2));

  // Key worker: minimum current computation load (the subtree build is
  // CPU-bound), charged |I_x| * |C| * log |I_x|.
  int key = -1;
  for (int j = 0; j < num_workers(); ++j) {
    if (!alive[j]) continue;
    if (key < 0 || comp_[j] < comp_[key]) key = j;
  }
  TS_CHECK(key >= 0) << "no live workers";
  out.key_worker = key;
  double build_cost = n * static_cast<double>(columns.size()) * std::log2(n);
  comp_[key] += build_cost;
  out.delta.Add(key, build_cost, 0, 0);

  std::vector<bool> pulled_ix(num_workers(), false);
  // The key worker itself pulls I_x once (for Y and local columns).
  if (parent_worker >= 0) {
    recv_[key] += n;
    out.delta.Add(key, 0, 0, n);
    send_[parent_worker] += n;
    out.delta.Add(parent_worker, 0, n, 0);
  }
  pulled_ix[key] = true;

  for (int col : columns) {
    int best = -1;
    double best_score = std::numeric_limits<double>::infinity();
    for (int j : placement.holders(col)) {
      if (!alive[j]) continue;
      if (j == key) {
        // Local gather: no transfers at all; strictly preferred.
        best = j;
        best_score = -1.0;
        break;
      }
      double recv_j = recv_[j];
      double send_pa = parent_worker >= 0 ? send_[parent_worker] : 0.0;
      if (!pulled_ix[j] && parent_worker >= 0) {
        recv_j += n;
        send_pa += n;
      }
      double send_j = send_[j] + n;
      double recv_key = recv_[key] + n;
      double score = std::max(std::max(recv_j, send_pa),
                              std::max(send_j, recv_key));
      if (best < 0 || score < best_score) {
        best = j;
        best_score = score;
      }
    }
    TS_CHECK(best >= 0) << "no live holder for column " << col;

    if (best != key) {
      if (!pulled_ix[best] && parent_worker >= 0) {
        recv_[best] += n;
        out.delta.Add(best, 0, 0, n);
        send_[parent_worker] += n;
        out.delta.Add(parent_worker, 0, n, 0);
      }
      pulled_ix[best] = true;
      send_[best] += n;
      out.delta.Add(best, 0, n, 0);
      recv_[key] += n;
      out.delta.Add(key, 0, 0, n);
    }
    out.columns.push_back(col);
    out.servers.push_back(best);
  }
  return out;
}

}  // namespace treeserver
