#include "engine/master.h"

#include <algorithm>
#include <chrono>
#include <set>

#include "common/logging.h"
#include "common/trace.h"
#include "tree/trainer.h"

namespace treeserver {

namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Master::Master(std::shared_ptr<const DataTable> table, Transport* network,
               const EngineConfig& config)
    : table_(std::move(table)),
      network_(network),
      config_(config),
      link_(network, kMasterRank, config.ReliableConfig()),
      placement_(table_->schema(), config.num_workers, config.replication),
      load_(config.num_workers),
      alive_(config.num_workers, true),
      task_latency_us_(
          MetricsRegistry::Global().GetHistogram("master.task_latency_us")),
      bplan_depth_(
          MetricsRegistry::Global().GetHistogram("master.bplan_depth")),
      column_latency_us_(MetricsRegistry::Global().GetHistogram(
          "master.column_task_latency_us")),
      subtree_latency_us_(MetricsRegistry::Global().GetHistogram(
          "master.subtree_task_latency_us")),
      slow_tasks_(MetricsRegistry::Global().GetCounter("engine.slow_tasks")),
      sched_counter_(
          MetricsRegistry::Global().GetCounter("engine.tasks_scheduled")),
      dup_msgs_(
          MetricsRegistry::Global().GetCounter("engine.duplicate_tasks")) {}

Master::~Master() { Stop(); }

void Master::Start() {
  link_.Start();
  main_thread_ = std::thread(&Master::MainLoop, this);
  recv_thread_ = std::thread(&Master::RecvLoop, this);
  if (config_.watchdog_period_ms > 0) {
    watchdog_thread_ = std::thread(&Master::WatchdogLoop, this);
  }
}

void Master::Stop() {
  // Idempotent: the destructor calls Stop() again after a failover has
  // already stopped this master and handed the mailbox to a successor;
  // re-closing the queue here would kill the new master's channel.
  if (stopped_.exchange(true)) return;
  stop_.store(true);
  {
    std::lock_guard<std::mutex> lock(watchdog_mu_);
    watchdog_cv_.notify_all();
  }
  if (watchdog_thread_.joinable()) watchdog_thread_.join();
  if (main_thread_.joinable()) main_thread_.join();
  // No more scheduling: stop retransmitting before the channel closes.
  link_.Stop();
  // θ_recv blocks on the master queue; close it so the thread drains
  // pending results and exits.
  network_->master_queue().Close();
  if (recv_thread_.joinable()) recv_thread_.join();
}

uint32_t Master::Submit(const ForestJobSpec& spec) {
  std::lock_guard<std::mutex> lock(master_mu_);
  uint32_t id = next_job_id_++;
  JobState job;
  job.spec = spec;
  job.trees.resize(spec.num_trees);
  job.completed = spec.num_trees == 0;
  jobs_.emplace(id, std::move(job));
  job_order_.push_back(id);
  return id;
}

ForestModel Master::Wait(uint32_t job_id) {
  std::unique_lock<std::mutex> lock(master_mu_);
  auto it = jobs_.find(job_id);
  TS_CHECK(it != jobs_.end()) << "unknown job " << job_id;
  job_cv_.wait(lock, [&] { return it->second.completed; });
  ForestModel model(table_->schema().task_kind(),
                    table_->schema().num_classes());
  for (TreeModel& t : it->second.trees) model.AddTree(t);
  return model;
}

void Master::SendToWorker(int worker, MsgType type, std::string payload,
                          uint64_t trace_id) {
  link_.Send(ChannelKind::kTask,
             Message{kMasterRank, worker, static_cast<uint32_t>(type),
                     std::move(payload), trace_id});
}

void Master::InsertPlan(const Plan& plan) {
  if (plan.n_rows <= config_.tau_dfs) {
    TraceInstant(TraceCat::kPlanInsert, "plan-head", plan.tree_id, "n_rows",
                 static_cast<int64_t>(plan.n_rows));
    bplan_.PushFront(plan);  // depth-first descent (stack behaviour)
  } else {
    TraceInstant(TraceCat::kPlanInsert, "plan-tail", plan.tree_id, "n_rows",
                 static_cast<int64_t>(plan.n_rows));
    bplan_.PushBack(plan);  // breadth-first expansion (queue behaviour)
  }
  bplan_depth_->Add(bplan_.size());
}

void Master::ObserveTaskCompletion(const EntryPtr& entry) {
  uint64_t sched_ns;
  uint64_t task_id;
  bool is_subtree;
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    sched_ns = entry->sched_ns;
    task_id = entry->task_id;
    is_subtree = entry->is_subtree;
  }
  if (sched_ns != 0) {
    const uint64_t us = (NowNanos() - sched_ns) / 1000;
    task_latency_us_->Add(us);
    (is_subtree ? subtree_latency_us_ : column_latency_us_)->Add(us);
  }
  TraceAsyncEnd(is_subtree ? TraceCat::kSubtreeTask : TraceCat::kColumnTask,
                "task", task_id);
}

bool Master::LeafByStats(const TargetStats& stats, int depth,
                         const TaskContext& ctx) const {
  return depth >= ctx.max_depth ||
         stats.Count() <= static_cast<int64_t>(ctx.min_leaf) ||
         stats.IsPure();
}

// ---------------------------------------------------------------------
// θ_main.
// ---------------------------------------------------------------------

void Master::MainLoop() {
  while (!stop_.load()) {
    {
      std::lock_guard<std::mutex> lock(master_mu_);
      AdmitTrees();
    }
    std::optional<Plan> plan = bplan_.TryPopFront();
    if (!plan.has_value()) {
      // Nothing to assign: sleep briefly to avoid busy waiting
      // (Appendix E uses the same 100 µs probe interval).
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      continue;
    }
    SchedulePlan(*plan);
  }
}

std::string Master::Checkpoint() {
  std::lock_guard<std::mutex> lock(master_mu_);
  BinaryWriter w;
  w.Write(next_job_id_);
  w.Write(next_tree_id_);
  // Task/tree ids must stay globally unique across master epochs:
  // stale data-channel messages from the old epoch must never alias a
  // new task. Skip far ahead to also cover ids the dying master
  // allocated after this checkpoint.
  w.Write(next_task_id_.load() + 1000000);
  w.Write(static_cast<uint32_t>(job_order_.size()));
  for (uint32_t job_id : job_order_) {
    const JobState& job = jobs_.at(job_id);
    w.Write(job_id);
    job.spec.Serialize(&w);
    w.Write(static_cast<uint32_t>(job.trees.size()));
    for (const TreeModel& tree : job.trees) {
      const uint8_t done = tree.empty() ? uint8_t{0} : uint8_t{1};
      w.Write(done);
      if (done != 0) tree.Serialize(&w);
    }
  }
  w.Write(static_cast<uint32_t>(alive_.size()));
  for (bool a : alive_) w.Write(static_cast<uint8_t>(a ? 1 : 0));
  // Fencing epoch: the restoring master resumes at epoch + 1 so the
  // dead master's in-flight messages (and its acks) are fenced.
  w.Write(epoch_);
  return w.Release();
}

Status Master::Restore(const std::string& checkpoint) {
  std::lock_guard<std::mutex> lock(master_mu_);
  TS_CHECK(trees_.empty() && jobs_.empty()) << "Restore on a used master";
  BinaryReader r(checkpoint);
  TS_RETURN_IF_ERROR(r.Read(&next_job_id_));
  TS_RETURN_IF_ERROR(r.Read(&next_tree_id_));
  next_tree_id_ += 100000;  // old epoch may have advanced past this
  uint64_t next_task = 0;
  TS_RETURN_IF_ERROR(r.Read(&next_task));
  next_task_id_.store(next_task);
  uint32_t job_count;
  TS_RETURN_IF_ERROR(r.Read(&job_count));
  for (uint32_t i = 0; i < job_count; ++i) {
    uint32_t job_id;
    TS_RETURN_IF_ERROR(r.Read(&job_id));
    JobState job;
    TS_RETURN_IF_ERROR(ForestJobSpec::Deserialize(&r, &job.spec));
    uint32_t tree_count;
    TS_RETURN_IF_ERROR(r.Read(&tree_count));
    job.trees.resize(tree_count);
    for (uint32_t t = 0; t < tree_count; ++t) {
      uint8_t done = 0;
      TS_RETURN_IF_ERROR(r.Read(&done));
      if (done != 0) {
        TS_RETURN_IF_ERROR(TreeModel::Deserialize(&r, &job.trees[t]));
        ++job.done;
      }
    }
    job.completed = job.done == job.spec.num_trees;
    jobs_.emplace(job_id, std::move(job));
    job_order_.push_back(job_id);
  }
  uint32_t workers;
  TS_RETURN_IF_ERROR(r.Read(&workers));
  if (workers != alive_.size()) {
    return Status::Corruption("checkpoint worker count mismatch");
  }
  for (uint32_t wk = 0; wk < workers; ++wk) {
    uint8_t a;
    TS_RETURN_IF_ERROR(r.Read(&a));
    if (a == 0) {
      alive_[wk] = false;
      placement_.RemoveWorker(static_cast<int>(wk));
    }
  }
  uint32_t epoch = 0;
  TS_RETURN_IF_ERROR(r.Read(&epoch));
  epoch_ = epoch + 1;
  link_.SetGeneration(epoch_);
  return Status::OK();
}

void Master::AdmitTrees() {
  // Requires master_mu_. Jobs are served in submission order; a later
  // job's trees begin while an earlier job's last trees are still in
  // flight, mixing CPU-bound and IO-bound tasks (Section III).
  for (uint32_t job_id : job_order_) {
    JobState& job = jobs_[job_id];
    bool deps_ready = true;
    for (uint32_t dep : job.spec.depends_on) {
      auto it = jobs_.find(dep);
      deps_ready = deps_ready && it != jobs_.end() && it->second.completed;
    }
    if (!deps_ready) continue;
    while (job.admitted < job.spec.num_trees &&
           active_trees_ < config_.npool) {
      // Trees restored from a master checkpoint are already done.
      if (!job.trees[job.admitted].empty()) {
        ++job.admitted;
        continue;
      }
      uint32_t tree_id = next_tree_id_++;
      TreeState ts;
      ts.tree_id = tree_id;
      ts.job_id = job_id;
      ts.tree_index = job.admitted++;
      ts.candidates = job.spec.SampleColumns(table_->schema(), ts.tree_index);
      ts.ctx.impurity = static_cast<uint8_t>(job.spec.tree.impurity);
      ts.ctx.max_depth = job.spec.tree.max_depth;
      ts.ctx.min_leaf = job.spec.tree.min_leaf;
      ts.ctx.extra_trees = job.spec.tree.extra_trees ? 1 : 0;
      ts.ctx.split_method = static_cast<uint8_t>(job.spec.tree.split_method);
      ts.ctx.max_bins = static_cast<uint16_t>(
          std::max(2, std::min(65535, job.spec.tree.max_bins)));
      ts.rng = job.spec.TreeRng(ts.tree_index);
      ts.model = TreeModel(table_->schema().task_kind(),
                           table_->schema().num_classes());
      ts.model.AddNode(TreeModel::Node{});  // root placeholder
      ts.pending = 1;
      ++active_trees_;

      Plan root;
      root.tree_id = tree_id;
      root.node_id = 0;
      root.depth = 0;
      root.n_rows = table_->num_rows();
      trees_.emplace(tree_id, std::move(ts));
      InsertPlan(root);
    }
    if (active_trees_ >= config_.npool) break;
  }
}

void Master::SchedulePlan(const Plan& plan) {
  TaskContext ctx;
  std::vector<int> candidates;
  std::vector<bool> alive_snapshot;
  {
    std::lock_guard<std::mutex> lock(master_mu_);
    auto it = trees_.find(plan.tree_id);
    if (it == trees_.end()) return;  // tree revoked meanwhile
    TreeState& ts = it->second;
    ctx = ts.ctx;
    ctx.rng_seed = ts.rng.Next();
    candidates = ts.candidates;
    alive_snapshot = alive_;
  }

  const uint64_t task_id = next_task_id_.fetch_add(1);
  TraceSpan assign_span(TraceCat::kWorkerAssign, "schedule", task_id);
  assign_span.SetArg("n_rows", static_cast<int64_t>(plan.n_rows));
  auto entry = std::make_shared<Entry>();
  entry->task_id = task_id;
  entry->sched_ns = NowNanos();
  entry->tree_id = plan.tree_id;
  entry->node_id = plan.node_id;
  entry->depth = plan.depth;
  entry->n_rows = plan.n_rows;
  entry->parent_worker = plan.parent_worker;
  entry->parent_task = plan.parent_task;
  entry->side = plan.side;
  entry->et_retries = plan.et_retries;

  const bool is_subtree = plan.n_rows <= config_.tau_d;
  TS_LOG(kDebug) << "master: schedule task " << task_id << " tree "
                 << plan.tree_id << " node " << plan.node_id << " n="
                 << plan.n_rows << (is_subtree ? " subtree" : " column")
                 << " parent_w=" << plan.parent_worker;
  if (is_subtree) {
    LoadMatrix::SubtreeAssignment assign = load_.AssignSubtreeTask(
        placement_, candidates, plan.n_rows, plan.parent_worker,
        alive_snapshot);
    entry->is_subtree = true;
    entry->key_worker = assign.key_worker;
    entry->pending = 1;
    entry->delta = assign.delta;
    std::set<int> involved(assign.servers.begin(), assign.servers.end());
    involved.insert(assign.key_worker);
    entry->workers.assign(involved.begin(), involved.end());
    TS_CHECK(ttask_.Insert(task_id, entry));
    TraceAsyncBegin(TraceCat::kSubtreeTask, "task", task_id, "n_rows",
                    static_cast<int64_t>(plan.n_rows));

    SubtreeTaskPlan msg;
    msg.task_id = task_id;
    msg.tree_id = plan.tree_id;
    msg.node_id = plan.node_id;
    msg.depth = plan.depth;
    msg.n_rows = plan.n_rows;
    msg.parent_worker = plan.parent_worker;
    msg.parent_task = plan.parent_task;
    msg.side = plan.side;
    msg.columns = assign.columns;
    msg.column_servers = assign.servers;
    msg.ctx = ctx;
    SendToWorker(assign.key_worker, MsgType::kSubtreeTaskPlan, msg.Encode(),
                 task_id);
  } else {
    std::vector<int> task_columns = candidates;
    if (ctx.extra_trees != 0) {
      // Completely-random node: sample one column (|C| = 1); the
      // worker draws the random split point from the same seed.
      Rng pick(ctx.rng_seed ^ 0xC0FFEE123456789ULL);
      task_columns = {candidates[pick.Uniform(candidates.size())]};
    }
    LoadMatrix::ColumnAssignment assign = load_.AssignColumnTask(
        placement_, task_columns, plan.n_rows, plan.parent_worker,
        alive_snapshot);
    entry->pending = static_cast<int>(assign.worker_columns.size());
    entry->delta = assign.delta;
    for (const auto& [w, cols] : assign.worker_columns) {
      entry->workers.push_back(w);
    }
    TS_CHECK(ttask_.Insert(task_id, entry));
    TraceAsyncBegin(TraceCat::kColumnTask, "task", task_id, "n_rows",
                    static_cast<int64_t>(plan.n_rows));

    for (const auto& [w, cols] : assign.worker_columns) {
      ColumnTaskPlan msg;
      msg.task_id = task_id;
      msg.tree_id = plan.tree_id;
      msg.node_id = plan.node_id;
      msg.depth = plan.depth;
      msg.n_rows = plan.n_rows;
      msg.parent_worker = plan.parent_worker;
      msg.parent_task = plan.parent_task;
      msg.side = plan.side;
      msg.columns = cols;
      msg.ctx = ctx;
      SendToWorker(w, MsgType::kColumnTaskPlan, msg.Encode(), task_id);
    }
  }
  tasks_scheduled_.Inc();
  sched_counter_->Inc();

  // Crash window: if a worker we just involved died between the alive_
  // snapshot and now, its plan messages were dropped and no response
  // will ever arrive. Re-plan immediately.
  {
    std::lock_guard<std::mutex> lock(master_mu_);
    bool dead = false;
    for (int w : entry->workers) {
      if (!alive_[w]) dead = true;
    }
    if (plan.parent_worker >= 0 && !alive_[plan.parent_worker]) dead = true;
    if (dead) {
      if (ttask_.Erase(task_id)) {
        load_.Apply(entry->delta, -1.0);
        for (int w : entry->workers) {
          if (alive_[w]) {
            SendToWorker(w, MsgType::kTaskDelete,
                         TaskIdOnly{task_id}.Encode());
          }
        }
        bplan_.PushFront(plan);
      }
    }
  }
}

// ---------------------------------------------------------------------
// θ_recv.
// ---------------------------------------------------------------------

void Master::RecvLoop() {
  while (auto msg = network_->master_queue().Pop()) {
    if (!link_.OnReceive(&*msg, ChannelKind::kTask)) continue;
    switch (static_cast<MsgType>(msg->type)) {
      case MsgType::kColumnTaskResponse:
        HandleColumnResponse(msg->payload);
        break;
      case MsgType::kSubtreeResult:
        HandleSubtreeResult(msg->payload);
        break;
      case MsgType::kWorkerCrashed: {
        BinaryReader r(msg->payload);
        int32_t w = 0;
        if (r.Read(&w).ok() && w >= 0 && w < config_.num_workers) {
          HandleWorkerCrash(w);
        } else {
          TS_LOG(kError) << "master: bad crash notice";
        }
        break;
      }
      case MsgType::kTraceSnapshot:
        HandleTraceSnapshot(msg->payload);
        break;
      default:
        TS_LOG(kError) << "master: unexpected msg type " << msg->type;
    }
  }
}

void Master::HandleColumnResponse(const std::string& payload) {
  ColumnTaskResponse resp;
  if (Status st = ColumnTaskResponse::Decode(payload, &resp); !st.ok()) {
    TS_LOG(kError) << "master: bad column response: " << st.ToString();
    return;
  }
  EntryPtr entry;
  ttask_.Visit(resp.task_id, [&](EntryPtr& e) { entry = e; });
  if (entry == nullptr) return;  // revoked

  bool complete = false;
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    if (entry->completed) return;  // stale duplicate
    if (!entry->responded.insert(resp.worker).second) {
      // Replayed response from a worker already counted: folding it in
      // again would double-decrement `pending` and complete the node
      // with partial results.
      dup_msgs_->Inc();
      TS_LOG(kWarn) << "master: dropped duplicate response for task "
                    << resp.task_id << " from w" << resp.worker;
      return;
    }
    if (!entry->have_stats) {
      entry->node_stats = resp.node_stats;
      entry->have_stats = true;
    }
    if (SplitBeats(resp.outcome, entry->best)) {
      entry->best = std::move(resp.outcome);
      entry->best_worker = resp.worker;
    }
    complete = --entry->pending == 0;
    TS_LOG(kDebug) << "master: response task " << resp.task_id << " from w"
                   << resp.worker << " pending=" << entry->pending;
  }
  if (complete) ProcessNodeCompletion(entry);
}

void Master::ProcessNodeCompletion(const EntryPtr& entry) {
  ObserveTaskCompletion(entry);
  // Snapshot the entry (θ_recv is the only mutator at this point).
  uint64_t task_id;
  uint32_t tree_id;
  int32_t node_id;
  int depth;
  uint64_t n_rows;
  std::vector<int> workers;
  SplitOutcome best;
  int best_worker;
  TargetStats stats;
  int et_retries;
  uint64_t parent_task;
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    task_id = entry->task_id;
    tree_id = entry->tree_id;
    node_id = entry->node_id;
    depth = entry->depth;
    n_rows = entry->n_rows;
    workers = entry->workers;
    best = entry->best;
    best_worker = entry->best_worker;
    stats = entry->node_stats;
    et_retries = entry->et_retries;
    parent_task = entry->parent_task;
  }

  enum class Action { kDrop, kLeaf, kRetry, kSplit };
  Action action = Action::kDrop;
  int leaf_children = 0;
  TaskContext ctx;
  {
    std::lock_guard<std::mutex> lock(master_mu_);
    auto it = trees_.find(tree_id);
    if (it != trees_.end()) {
      TreeState& ts = it->second;
      ctx = ts.ctx;
      bool no_split =
          !best.valid ||
          (ctx.extra_trees == 0 && best.gain <= kMinSplitGain);
      bool leaf = depth >= ctx.max_depth ||
                  n_rows <= static_cast<uint64_t>(ctx.min_leaf) ||
                  stats.IsPure() || no_split;
      if (leaf && ctx.extra_trees != 0 && !best.valid &&
          !(depth >= ctx.max_depth ||
            n_rows <= static_cast<uint64_t>(ctx.min_leaf) ||
            stats.IsPure()) &&
          et_retries + 1 < 2 * static_cast<int>(ts.candidates.size())) {
        // Completely-random tree hit a constant column: resample
        // another column and try again.
        action = Action::kRetry;
      } else if (leaf) {
        action = Action::kLeaf;
        FinalizeLeaf(&ts, node_id, depth, stats);
        TaskFinished(tree_id);
      } else {
        action = Action::kSplit;
        TreeModel::Node& node = ts.model.mutable_node(node_id);
        node.condition = best.condition;
        node.split_gain = best.gain;
        node.depth = static_cast<uint16_t>(depth);
        FillNodePrediction(stats, &node);
        // Placeholders carry their depth up front: GraftSubtree uses
        // it as the base depth when a subtree-task result hooks in.
        TreeModel::Node left_placeholder;
        left_placeholder.depth = static_cast<uint16_t>(depth + 1);
        TreeModel::Node right_placeholder;
        right_placeholder.depth = static_cast<uint16_t>(depth + 1);
        int32_t left_id = ts.model.AddNode(std::move(left_placeholder));
        int32_t right_id = ts.model.AddNode(std::move(right_placeholder));
        TreeModel::Node& parent = ts.model.mutable_node(node_id);
        parent.left = left_id;
        parent.right = right_id;

        const TargetStats* child_stats[2] = {&best.left_stats,
                                             &best.right_stats};
        int32_t child_ids[2] = {left_id, right_id};
        for (int side = 0; side < 2; ++side) {
          if (LeafByStats(*child_stats[side], depth + 1, ctx)) {
            FinalizeLeaf(&ts, child_ids[side], depth + 1,
                         *child_stats[side]);
            ++leaf_children;
          } else {
            ++ts.pending;
            Plan child;
            child.tree_id = tree_id;
            child.node_id = child_ids[side];
            child.depth = depth + 1;
            child.n_rows = static_cast<uint64_t>(child_stats[side]->Count());
            child.parent_worker = best_worker;
            child.parent_task = task_id;
            child.side = static_cast<uint8_t>(side);
            InsertPlan(child);
          }
        }
        TaskFinished(tree_id);
      }
    }
  }

  load_.Apply(entry->delta, -1.0);
  TS_LOG(kDebug) << "master: task " << task_id << " node " << node_id
                 << " action=" << static_cast<int>(action)
                 << " leaf_children=" << leaf_children;

  switch (action) {
    case Action::kDrop:
    case Action::kLeaf: {
      // No delegate duty: everyone drops the task object.
      for (int w : workers) {
        SendToWorker(w, MsgType::kTaskDelete, TaskIdOnly{task_id}.Encode());
      }
      ttask_.Erase(task_id);
      if (action == Action::kLeaf) NotifyChildDone(parent_task);
      break;
    }
    case Action::kRetry: {
      for (int w : workers) {
        SendToWorker(w, MsgType::kTaskDelete, TaskIdOnly{task_id}.Encode());
      }
      ttask_.Erase(task_id);
      Plan retry;
      retry.tree_id = tree_id;
      retry.node_id = node_id;
      retry.depth = depth;
      retry.n_rows = n_rows;
      retry.parent_worker = entry->parent_worker;
      retry.parent_task = parent_task;
      retry.side = entry->side;
      retry.et_retries = et_retries + 1;
      bplan_.PushFront(retry);
      break;
    }
    case Action::kSplit: {
      bool release_now = false;
      {
        std::lock_guard<std::mutex> lock(entry->mu);
        entry->completed = true;
        entry->children_done += leaf_children;
        release_now = entry->children_done >= 2;
      }
      for (int w : workers) {
        BestSplitNotify notify;
        notify.task_id = task_id;
        notify.is_delegate = (w == best_worker) ? 1 : 0;
        notify.condition = best.condition;
        SendToWorker(w, MsgType::kBestSplitNotify, notify.Encode());
      }
      if (release_now) {
        SendToWorker(best_worker, MsgType::kParentRelease,
                     TaskIdOnly{task_id}.Encode());
        ttask_.Erase(task_id);
      }
      NotifyChildDone(parent_task);
      break;
    }
  }
}

void Master::HandleSubtreeResult(const std::string& payload) {
  SubtreeResult resp;
  if (Status st = SubtreeResult::Decode(payload, &resp); !st.ok()) {
    TS_LOG(kError) << "master: bad subtree result: " << st.ToString();
    return;
  }
  EntryPtr entry;
  ttask_.Visit(resp.task_id, [&](EntryPtr& e) { entry = e; });
  if (entry == nullptr) return;  // revoked

  TreeModel subtree;
  {
    BinaryReader r(resp.tree_bytes);
    TS_CHECK(TreeModel::Deserialize(&r, &subtree).ok());
  }

  uint64_t parent_task;
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    parent_task = entry->parent_task;
  }

  TS_LOG(kDebug) << "master: subtree result task " << resp.task_id;
  ObserveTaskCompletion(entry);
  {
    std::lock_guard<std::mutex> lock(master_mu_);
    auto it = trees_.find(entry->tree_id);
    if (it != trees_.end()) {
      TreeState& ts = it->second;
      ts.model.GraftSubtree(entry->node_id, subtree);
      TaskFinished(entry->tree_id);
    }
  }

  load_.Apply(entry->delta, -1.0);
  ttask_.Erase(resp.task_id);
  NotifyChildDone(parent_task);
}

void Master::FinalizeLeaf(TreeState* tree, int32_t node_id, int depth,
                          const TargetStats& stats) {
  TreeModel::Node& node = tree->model.mutable_node(node_id);
  node.condition = SplitCondition{};  // leaf
  node.depth = static_cast<uint16_t>(depth);
  FillNodePrediction(stats, &node);
}

void Master::TaskFinished(uint32_t tree_id) {
  auto it = trees_.find(tree_id);
  TS_CHECK(it != trees_.end());
  TreeState& ts = it->second;
  TS_LOG(kDebug) << "master: tree " << tree_id << " pending now "
                 << ts.pending - 1;
  if (--ts.pending > 0) return;

  // Last task of this tree: flush it to its job and free the pool slot
  // immediately (progress table T_prog, Appendix C).
  JobState& job = jobs_[ts.job_id];
  // Node layout follows task completion order up to here; canonicalize
  // so the serialized tree is identical across runs and transports.
  ts.model.Canonicalize();
  job.trees[ts.tree_index] = std::move(ts.model);
  ++job.done;
  trees_completed_.Inc();
  TraceInstant(TraceCat::kTreeComplete, "tree-complete", tree_id);
  --active_trees_;
  if (job.done == job.spec.num_trees) {
    job.completed = true;
    job_cv_.notify_all();
  }
  trees_.erase(it);
}

void Master::NotifyChildDone(uint64_t parent_task) {
  if (parent_task == 0) return;
  EntryPtr entry;
  ttask_.Visit(parent_task, [&](EntryPtr& e) { entry = e; });
  if (entry == nullptr) return;
  bool release = false;
  int delegate = -1;
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    ++entry->children_done;
    release = entry->completed && entry->children_done >= 2;
    delegate = entry->best_worker;
  }
  if (release) {
    SendToWorker(delegate, MsgType::kParentRelease,
                 TaskIdOnly{parent_task}.Encode());
    ttask_.Erase(parent_task);
  }
}

// ---------------------------------------------------------------------
// Observability: slow-task watchdog + cross-rank trace collection.
// ---------------------------------------------------------------------

void Master::WatchdogLoop() {
  const auto period = std::chrono::milliseconds(config_.watchdog_period_ms);
  while (true) {
    {
      std::unique_lock<std::mutex> lock(watchdog_mu_);
      watchdog_cv_.wait_for(lock, period, [&] { return stop_.load(); });
    }
    if (stop_.load()) return;

    // Thresholds from the rolling per-kind latency distributions; the
    // min_us floor covers cold histograms (p99 of nothing is 0).
    const uint64_t column_p99 = column_latency_us_->snapshot().Percentile(0.99);
    const uint64_t subtree_p99 =
        subtree_latency_us_->snapshot().Percentile(0.99);
    const double mult = config_.watchdog_multiplier;
    const uint64_t column_limit =
        std::max(static_cast<uint64_t>(mult * static_cast<double>(column_p99)),
                 config_.watchdog_min_us);
    const uint64_t subtree_limit =
        std::max(static_cast<uint64_t>(mult * static_cast<double>(subtree_p99)),
                 config_.watchdog_min_us);

    const uint64_t now = NowNanos();
    ttask_.ForEach([&](const uint64_t&, EntryPtr& e) {
      std::lock_guard<std::mutex> lock(e->mu);
      if (e->completed || e->slow_flagged || e->sched_ns == 0) return;
      const uint64_t age_us = (now - e->sched_ns) / 1000;
      const uint64_t limit = e->is_subtree ? subtree_limit : column_limit;
      if (age_us <= limit) return;
      e->slow_flagged = true;  // flag once per task
      slow_tasks_->Inc();
      TraceInstant(TraceCat::kWatchdog, "slow-task", e->task_id, "age_us",
                   static_cast<int64_t>(age_us));
      std::string ranks;
      for (int w : e->workers) ranks += " w" + std::to_string(w);
      TS_LOG(kWarn) << "master: slow " << (e->is_subtree ? "subtree" : "column")
                    << "-task " << e->task_id << " tree " << e->tree_id
                    << " age=" << age_us << "us limit=" << limit << "us on"
                    << ranks;
    });
  }
}

int Master::RequestWorkerTraces() {
  std::vector<int> targets;
  {
    std::lock_guard<std::mutex> lock(master_mu_);
    for (int w = 0; w < config_.num_workers; ++w) {
      if (alive_[w]) targets.push_back(w);
    }
  }
  {
    std::lock_guard<std::mutex> lock(trace_mu_);
    worker_traces_.clear();
    trace_expected_ = targets.size();
  }
  for (int w : targets) {
    network_->Send(ChannelKind::kTrace,
                   Message{kMasterRank, w,
                           static_cast<uint32_t>(MsgType::kTraceRequest), ""});
  }
  return static_cast<int>(targets.size());
}

bool Master::WaitForWorkerTraces(int64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(trace_mu_);
  return trace_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), [&] {
    return worker_traces_.size() >= trace_expected_;
  });
}

std::vector<TraceSnapshotMsg> Master::TakeWorkerTraces() {
  std::lock_guard<std::mutex> lock(trace_mu_);
  trace_expected_ = 0;
  return std::move(worker_traces_);
}

void Master::HandleTraceSnapshot(const std::string& payload) {
  TraceSnapshotMsg snap;
  if (Status st = TraceSnapshotMsg::Decode(payload, &snap); !st.ok()) {
    TS_LOG(kError) << "master: bad trace snapshot: " << st.ToString();
    return;
  }
  TS_LOG(kDebug) << "master: trace snapshot from w" << snap.worker << " ("
                 << snap.events.size() << " events, " << snap.dropped
                 << " dropped)";
  std::lock_guard<std::mutex> lock(trace_mu_);
  worker_traces_.push_back(std::move(snap));
  trace_cv_.notify_all();
}

MasterStats Master::GetStats() const {
  MasterStats stats;
  stats.bplan_depth = bplan_.size();
  stats.tasks_in_flight = ttask_.size();
  ttask_.ForEach([&](const uint64_t&, const EntryPtr& e) {
    // Peeking at kind/completion without e->mu: both are set before the
    // entry is published to T_task and only flip once; stats tolerate
    // the benign race.
    if (e->is_subtree) {
      ++stats.subtree_tasks_in_flight;
    } else if (!e->completed) {
      ++stats.column_tasks_in_flight;
    }
  });
  stats.npool = config_.npool;
  stats.tasks_scheduled = tasks_scheduled_.value();
  stats.trees_completed = trees_completed_.value();
  stats.trees_restarted = trees_restarted_.value();
  stats.slow_tasks = slow_tasks_->value();
  MetricsRegistry& reg = MetricsRegistry::Global();
  stats.retransmits = reg.GetCounter("engine.retransmits")->value();
  stats.duplicate_msgs = reg.GetCounter("engine.duplicate_msgs")->value() +
                         reg.GetCounter("engine.duplicate_tasks")->value();
  stats.fenced_msgs = reg.GetCounter("engine.fenced_msgs")->value();
  stats.corrupt_msgs = reg.GetCounter("engine.corrupt_msgs")->value();
  stats.predicted_load.resize(config_.num_workers);
  for (int w = 0; w < config_.num_workers; ++w) {
    std::array<double, 3> l = load_.Get(w);
    stats.predicted_load[w] = {l[0], l[1], l[2]};
  }
  {
    std::lock_guard<std::mutex> lock(master_mu_);
    stats.active_trees = active_trees_;
    stats.jobs_total = jobs_.size();
    for (const auto& [id, job] : jobs_) {
      if (job.completed) ++stats.jobs_completed;
    }
  }
  return stats;
}

// ---------------------------------------------------------------------
// Fault tolerance.
// ---------------------------------------------------------------------

void Master::OnWorkerCrash(int worker) {
  BinaryWriter w;
  w.Write<int32_t>(worker);
  network_->Send(ChannelKind::kTask,
                 Message{kMasterRank, kMasterRank,
                         static_cast<uint32_t>(MsgType::kWorkerCrashed),
                         w.Release()});
}

void Master::HandleWorkerCrash(int worker) {
  TS_LOG(kInfo) << "master: worker " << worker << " crashed";
  {
    std::lock_guard<std::mutex> lock(master_mu_);
    if (!alive_[worker]) return;  // duplicate notice
    alive_[worker] = false;
  }
  // Stop retransmitting to the dead rank; its tasks are re-planned.
  link_.DropPeer(worker);
  load_.ClearWorker(worker);

  // Reassign the lost columns: every column the crashed worker held
  // still has k-1 replicas; re-replicate each onto the live worker
  // with the fewest holdings.
  std::vector<int> lost = placement_.RemoveWorker(worker);
  {
    std::lock_guard<std::mutex> lock(master_mu_);
    std::vector<int> held(config_.num_workers, 0);
    for (int col = 0; col < table_->num_columns(); ++col) {
      if (col == table_->schema().target_index()) continue;
      for (int h : placement_.holders(col)) ++held[h];
    }
    for (int col : lost) {
      int best = -1;
      for (int cand = 0; cand < config_.num_workers; ++cand) {
        if (!alive_[cand]) continue;
        bool already = false;
        for (int h : placement_.holders(col)) already |= (h == cand);
        if (already) continue;
        if (best < 0 || held[cand] < held[best]) best = cand;
      }
      if (best >= 0) {
        placement_.AddHolder(col, best);
        ++held[best];
      }
    }
  }

  // Classify in-flight tasks: tasks whose I_x source (parent worker or
  // completed delegate) died force a tree restart; tasks that merely
  // ran on the dead worker are revoked and re-planned (Section IV,
  // Fault Tolerance).
  std::set<uint32_t> restart_trees;
  std::vector<Plan> replans;
  std::vector<uint64_t> revoke_ids;
  ttask_.ForEach([&](const uint64_t& id, EntryPtr& e) {
    std::lock_guard<std::mutex> lock(e->mu);
    bool involves = false;
    for (int wk : e->workers) involves |= (wk == worker);
    if (e->parent_worker == worker ||
        (e->completed && e->best_worker == worker)) {
      restart_trees.insert(e->tree_id);
    } else if (!e->completed && (involves || e->key_worker == worker)) {
      Plan p;
      p.tree_id = e->tree_id;
      p.node_id = e->node_id;
      p.depth = e->depth;
      p.n_rows = e->n_rows;
      p.parent_worker = e->parent_worker;
      p.parent_task = e->parent_task;
      p.side = e->side;
      p.et_retries = e->et_retries;
      replans.push_back(p);
      revoke_ids.push_back(id);
    }
  });

  // Plans still queued whose parent worker died also break the I_x
  // chain.
  bplan_.RemoveIf([&](const Plan& p) {
    if (p.parent_worker == worker) {
      restart_trees.insert(p.tree_id);
      return true;
    }
    return false;
  });

  // Revoke & re-plan the recoverable tasks (skipping restarted trees —
  // those are wiped wholesale below).
  for (size_t i = 0; i < revoke_ids.size(); ++i) {
    if (restart_trees.count(replans[i].tree_id) > 0) continue;
    EntryPtr entry;
    ttask_.Visit(revoke_ids[i], [&](EntryPtr& e) { entry = e; });
    if (entry == nullptr) continue;
    ttask_.Erase(revoke_ids[i]);
    load_.Apply(entry->delta, -1.0);
    for (int wk : entry->workers) {
      if (wk != worker) {
        SendToWorker(wk, MsgType::kTaskDelete,
                     TaskIdOnly{revoke_ids[i]}.Encode());
      }
    }
    bplan_.PushFront(replans[i]);
  }

  // Restart broken trees from their roots.
  for (uint32_t tree_id : restart_trees) {
    bplan_.RemoveIf([&](const Plan& p) { return p.tree_id == tree_id; });
    std::vector<uint64_t> ids = ttask_.KeysWhere(
        [&](const uint64_t&, const EntryPtr& e) {
          return e->tree_id == tree_id;
        });
    for (uint64_t id : ids) {
      EntryPtr entry;
      ttask_.Visit(id, [&](EntryPtr& e) { entry = e; });
      if (entry != nullptr) load_.Apply(entry->delta, -1.0);
      ttask_.Erase(id);
    }
    for (int wk = 0; wk < config_.num_workers; ++wk) {
      bool live;
      {
        std::lock_guard<std::mutex> lock(master_mu_);
        live = alive_[wk];
      }
      if (live) {
        SendToWorker(wk, MsgType::kTreeRevoke, TreeIdOnly{tree_id}.Encode());
      }
    }
    std::lock_guard<std::mutex> lock(master_mu_);
    auto it = trees_.find(tree_id);
    if (it == trees_.end()) continue;
    TreeState& ts = it->second;
    ts.model = TreeModel(table_->schema().task_kind(),
                         table_->schema().num_classes());
    ts.model.AddNode(TreeModel::Node{});
    ts.pending = 1;
    Plan root;
    root.tree_id = tree_id;
    root.node_id = 0;
    root.depth = 0;
    root.n_rows = table_->num_rows();
    InsertPlan(root);
    trees_restarted_.Inc();
  }
}

}  // namespace treeserver
