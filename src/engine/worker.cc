#include "engine/worker.h"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/rng.h"
#include "common/trace.h"
#include "tree/trainer.h"

namespace treeserver {

namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Worker::Worker(int id, std::shared_ptr<const DataTable> table,
               Transport* network, int num_compers, PeakGauge* task_memory,
               BusyClock* busy_clock, bool compress_transfers,
               int debug_slow_task_ms, ReliableOptions reliable)
    : id_(id),
      table_(std::move(table)),
      network_(network),
      link_(network, id, reliable),
      num_compers_(num_compers),
      task_memory_(task_memory),
      busy_clock_(busy_clock),
      compress_transfers_(compress_transfers),
      debug_slow_task_ms_(debug_slow_task_ms),
      computed_counter_(
          MetricsRegistry::Global().GetCounter("engine.tasks_computed")),
      dup_tasks_(
          MetricsRegistry::Global().GetCounter("engine.duplicate_tasks")) {}

Worker::~Worker() { Join(); }

void Worker::Start() {
  link_.Start();
  task_thread_ = std::thread(&Worker::TaskLoop, this);
  data_thread_ = std::thread(&Worker::DataLoop, this);
  for (int i = 0; i < num_compers_; ++i) {
    compers_.emplace_back(&Worker::ComperLoop, this);
  }
}

void Worker::Join() {
  link_.Stop();
  if (task_thread_.joinable()) task_thread_.join();
  if (data_thread_.joinable()) data_thread_.join();
  for (std::thread& t : compers_) {
    if (t.joinable()) t.join();
  }
}

Worker::TaskPtr Worker::Find(uint64_t task_id) {
  TaskPtr out;
  tasks_.Visit(task_id, [&](TaskPtr& p) { out = p; });
  return out;
}

WorkerStats Worker::GetStats() const {
  WorkerStats stats;
  stats.worker = id_;
  stats.tasks_parked = tasks_.size();
  stats.btask_depth = btask_.size();
  stats.tasks_computed = computed_.value();
  if (busy_clock_ != nullptr) stats.busy_seconds = busy_clock_->Seconds();
  return stats;
}

std::shared_ptr<std::vector<uint32_t>> Worker::IotaRows(uint64_t n) const {
  auto rows = std::make_shared<std::vector<uint32_t>>(n);
  std::iota(rows->begin(), rows->end(), 0u);
  return rows;
}

void Worker::RequestIx(uint64_t parent_task, int parent_worker, uint8_t side,
                       uint64_t requester_task) {
  IxRequest req;
  req.parent_task = parent_task;
  req.side = side;
  req.requester_task = requester_task;
  req.requester_worker = id_;
  link_.Send(ChannelKind::kData,
             Message{id_, parent_worker,
                     static_cast<uint32_t>(MsgType::kIxRequest),
                     req.Encode(), requester_task});
}

// ---------------------------------------------------------------------
// θ_main: task channel.
// ---------------------------------------------------------------------

void Worker::TaskLoop() {
  while (auto msg = network_->task_queue(id_).Pop()) {
    if (!link_.OnReceive(&*msg, ChannelKind::kTask)) continue;
    switch (static_cast<MsgType>(msg->type)) {
      case MsgType::kColumnTaskPlan:
        HandleColumnTaskPlan(msg->payload);
        break;
      case MsgType::kSubtreeTaskPlan:
        HandleSubtreeTaskPlan(msg->payload);
        break;
      case MsgType::kBestSplitNotify:
        HandleBestSplitNotify(msg->payload);
        break;
      case MsgType::kTaskDelete:
        HandleTaskDelete(msg->payload);
        break;
      case MsgType::kParentRelease:
        HandleParentRelease(msg->payload);
        break;
      case MsgType::kTreeRevoke:
        HandleTreeRevoke(msg->payload);
        break;
      case MsgType::kRevokeAll: {
        std::vector<uint64_t> keys =
            tasks_.KeysWhere([](const uint64_t&, const TaskPtr&) {
              return true;
            });
        for (uint64_t key : keys) tasks_.Erase(key);
        break;
      }
      case MsgType::kTraceRequest:
        HandleTraceRequest();
        break;
      case MsgType::kShutdown:
        network_->task_queue(id_).Close();
        break;
      default:
        TS_LOG(kError) << "worker " << id_ << ": unexpected task msg "
                       << msg->type;
    }
  }
  TS_LOG(kDebug) << "w" << id_ << ": task loop exiting";
  btask_.Close();
}

void Worker::HandleColumnTaskPlan(const std::string& payload) {
  ColumnTaskPlan plan;
  if (Status st = ColumnTaskPlan::Decode(payload, &plan); !st.ok()) {
    TS_LOG(kError) << "w" << id_ << ": bad column plan: " << st.ToString();
    return;
  }
  TS_LOG(kDebug) << "w" << id_ << ": column plan task " << plan.task_id;
  auto task = std::make_shared<TaskState>(task_memory_);
  task->kind = TaskKindTag::kColumn;
  task->tree_id = plan.tree_id;
  task->cplan = plan;
  if (!tasks_.Insert(plan.task_id, task)) {
    // Replayed plan (e.g. a retransmit racing its ack): the live task
    // object already tracks this work — dropping the replay is safe.
    dup_tasks_->Inc();
    TS_LOG(kWarn) << "w" << id_ << ": dropped duplicate column plan for task "
                  << plan.task_id;
    return;
  }

  if (plan.parent_worker < 0) {
    // Root task: I_x is all rows, known locally.
    std::lock_guard<std::mutex> lock(task->mu);
    task->ix = IotaRows(plan.n_rows);
    task->ChargeMemory(static_cast<int64_t>(plan.n_rows * sizeof(uint32_t)));
    task->sent_to_compute = true;
    btask_.Push(ReadyTask{TaskKindTag::kColumn, plan.task_id});
  } else {
    RequestIx(plan.parent_task, plan.parent_worker, plan.side, plan.task_id);
  }
}

void Worker::HandleSubtreeTaskPlan(const std::string& payload) {
  SubtreeTaskPlan plan;
  if (Status st = SubtreeTaskPlan::Decode(payload, &plan); !st.ok()) {
    TS_LOG(kError) << "w" << id_ << ": bad subtree plan: " << st.ToString();
    return;
  }
  auto task = std::make_shared<TaskState>(task_memory_);
  task->kind = TaskKindTag::kSubtree;
  task->tree_id = plan.tree_id;
  task->splan = plan;

  // Group remote columns by serving worker.
  std::map<int, std::vector<int32_t>> remote;
  for (size_t i = 0; i < plan.columns.size(); ++i) {
    if (plan.column_servers[i] != id_) {
      remote[plan.column_servers[i]].push_back(plan.columns[i]);
    }
  }
  task->awaiting_remote = remote.size();
  if (!tasks_.Insert(plan.task_id, task)) {
    dup_tasks_->Inc();
    TS_LOG(kWarn) << "w" << id_ << ": dropped duplicate subtree plan for task "
                  << plan.task_id;
    return;
  }

  for (const auto& [server, cols] : remote) {
    ColumnDataRequest req;
    req.task_id = plan.task_id;
    req.tree_id = plan.tree_id;
    req.columns = cols;
    req.key_worker = id_;
    req.parent_worker = plan.parent_worker;
    req.parent_task = plan.parent_task;
    req.side = plan.side;
    req.n_rows = plan.n_rows;
    link_.Send(ChannelKind::kData,
               Message{id_, server,
                       static_cast<uint32_t>(MsgType::kColumnDataRequest),
                       req.Encode(), plan.task_id});
  }

  if (plan.parent_worker < 0) {
    std::lock_guard<std::mutex> lock(task->mu);
    task->ix = IotaRows(plan.n_rows);
    task->ChargeMemory(static_cast<int64_t>(plan.n_rows * sizeof(uint32_t)));
    CheckSubtreeReady(task, plan.task_id);
  } else {
    RequestIx(plan.parent_task, plan.parent_worker, plan.side, plan.task_id);
  }
}

void Worker::HandleBestSplitNotify(const std::string& payload) {
  BestSplitNotify notify;
  if (Status st = BestSplitNotify::Decode(payload, &notify); !st.ok()) {
    TS_LOG(kError) << "w" << id_ << ": bad split notify: " << st.ToString();
    return;
  }
  TaskPtr task = Find(notify.task_id);
  if (task == nullptr) return;  // revoked meanwhile

  if (notify.is_delegate == 0) {
    tasks_.Erase(notify.task_id);
    return;
  }

  std::vector<IxRequest> pending;
  {
    std::lock_guard<std::mutex> lock(task->mu);
    if (task->is_delegate || task->split_done) {
      // Replayed verdict: the split was already performed and I_x
      // consumed; re-splitting would dereference the released index.
      dup_tasks_->Inc();
      TS_LOG(kWarn) << "w" << id_
                    << ": dropped duplicate split verdict for task "
                    << notify.task_id;
      return;
    }
    TS_CHECK(task->ix != nullptr) << "delegate without I_x";
    task->is_delegate = true;
    task->delegate_condition = notify.condition;

    // Split I_x into I_xl / I_xr with the confirmed condition, reading
    // the winning column locally. Order is preserved so every replica
    // of the computation sees the same row order.
    const SplitCondition& cond = notify.condition;
    const ColumnPtr& col = table_->column(cond.column);
    auto left = std::make_shared<std::vector<uint32_t>>();
    auto right = std::make_shared<std::vector<uint32_t>>();
    left->reserve(task->ix->size());
    right->reserve(task->ix->size());
    if (cond.type == DataType::kNumeric) {
      for (uint32_t row : *task->ix) {
        if (cond.TrainRoutesLeftNumeric(col->numeric_at(row))) {
          left->push_back(row);
        } else {
          right->push_back(row);
        }
      }
    } else {
      for (uint32_t row : *task->ix) {
        if (cond.TrainRoutesLeftCategory(col->category_at(row))) {
          left->push_back(row);
        } else {
          right->push_back(row);
        }
      }
    }
    task->ix_left = std::move(left);
    task->ix_right = std::move(right);
    task->ix.reset();  // replaced by the two halves (same total bytes)
    task->split_done = true;
    pending.swap(task->queued_requests);
  }
  for (const IxRequest& req : pending) ServeIx(task, req);
}

void Worker::HandleTaskDelete(const std::string& payload) {
  TaskIdOnly body;
  if (!TaskIdOnly::Decode(payload, &body).ok()) return;
  tasks_.Erase(body.task_id);
}

void Worker::HandleParentRelease(const std::string& payload) {
  TaskIdOnly body;
  if (!TaskIdOnly::Decode(payload, &body).ok()) return;
  tasks_.Erase(body.task_id);
}

void Worker::HandleTreeRevoke(const std::string& payload) {
  TreeIdOnly body;
  if (!TreeIdOnly::Decode(payload, &body).ok()) return;
  std::vector<uint64_t> keys = tasks_.KeysWhere(
      [&](const uint64_t&, const TaskPtr& t) {
        return t->tree_id == body.tree_id;
      });
  for (uint64_t key : keys) tasks_.Erase(key);
}

// ---------------------------------------------------------------------
// θ_recv: data channel.
// ---------------------------------------------------------------------

void Worker::DataLoop() {
  while (auto msg = network_->data_queue(id_).Pop()) {
    if (!link_.OnReceive(&*msg, ChannelKind::kData)) continue;
    switch (static_cast<MsgType>(msg->type)) {
      case MsgType::kIxRequest:
        HandleIxRequest(msg->payload);
        break;
      case MsgType::kIxResponse:
        HandleIxResponse(msg->payload);
        break;
      case MsgType::kColumnDataRequest:
        HandleColumnDataRequest(msg->payload);
        break;
      case MsgType::kColumnDataResponse:
        HandleColumnDataResponse(msg->payload);
        break;
      default:
        TS_LOG(kError) << "worker " << id_ << ": unexpected data msg "
                       << msg->type;
    }
  }
}

void Worker::ServeIx(const TaskPtr& task, const IxRequest& req) {
  TraceSpan span(TraceCat::kIndexServe, "serve-ix", req.requester_task);
  IxResponse resp;
  resp.requester_task = req.requester_task;
  resp.compress = compress_transfers_;
  {
    std::lock_guard<std::mutex> lock(task->mu);
    TS_CHECK(task->split_done);
    const auto& rows = req.side == 0 ? task->ix_left : task->ix_right;
    resp.rows = *rows;
  }
  span.SetArg("rows", static_cast<int64_t>(resp.rows.size()));
  link_.Send(ChannelKind::kData,
             Message{id_, req.requester_worker,
                     static_cast<uint32_t>(MsgType::kIxResponse),
                     resp.Encode(), req.requester_task});
}

void Worker::HandleIxRequest(const std::string& payload) {
  IxRequest req;
  if (Status st = IxRequest::Decode(payload, &req); !st.ok()) {
    TS_LOG(kError) << "w" << id_ << ": bad ix request: " << st.ToString();
    return;
  }
  TaskPtr task = Find(req.parent_task);
  TS_LOG(kDebug) << "w" << id_ << ": ix request parent_task="
                 << req.parent_task << " from w" << req.requester_worker
                 << (task == nullptr ? " (NO TASK - dropped)" : "");
  if (task == nullptr) return;  // parent revoked; requester's tree too
  bool ready;
  {
    std::lock_guard<std::mutex> lock(task->mu);
    ready = task->split_done;
    if (!ready) task->queued_requests.push_back(req);
  }
  if (ready) ServeIx(task, req);
}

void Worker::HandleIxResponse(const std::string& payload) {
  IxResponse resp;
  if (Status st = IxResponse::Decode(payload, &resp); !st.ok()) {
    TS_LOG(kError) << "w" << id_ << ": bad ix response: " << st.ToString();
    return;
  }
  TaskPtr task = Find(resp.requester_task);
  TS_LOG(kDebug) << "w" << id_ << ": ix response for task "
                 << resp.requester_task << " rows=" << resp.rows.size()
                 << (task == nullptr ? " (no task)" : "");
  if (task == nullptr) return;

  bool serve_columns = false;
  {
    std::lock_guard<std::mutex> lock(task->mu);
    if (task->ix != nullptr || task->split_done) {
      // Replayed I_x: the first copy already landed (and may already
      // be split); overwriting would double-charge memory and could
      // re-enqueue the task.
      dup_tasks_->Inc();
      TS_LOG(kWarn) << "w" << id_ << ": dropped duplicate I_x for task "
                    << resp.requester_task;
      return;
    }
    task->ix =
        std::make_shared<std::vector<uint32_t>>(std::move(resp.rows));
    task->ChargeMemory(
        static_cast<int64_t>(task->ix->size() * sizeof(uint32_t)));
    switch (task->kind) {
      case TaskKindTag::kColumn:
        if (!task->sent_to_compute) {
          task->sent_to_compute = true;
          btask_.Push(ReadyTask{TaskKindTag::kColumn, resp.requester_task});
        }
        break;
      case TaskKindTag::kSubtree:
        CheckSubtreeReady(task, resp.requester_task);
        break;
      case TaskKindTag::kServe:
        serve_columns = true;
        break;
    }
  }
  if (serve_columns) ServeColumns(task);
}

void Worker::HandleColumnDataRequest(const std::string& payload) {
  ColumnDataRequest req;
  if (Status st = ColumnDataRequest::Decode(payload, &req); !st.ok()) {
    TS_LOG(kError) << "w" << id_ << ": bad column request: " << st.ToString();
    return;
  }
  auto task = std::make_shared<TaskState>(task_memory_);
  task->kind = TaskKindTag::kServe;
  task->tree_id = req.tree_id;
  task->serve = req;
  if (!tasks_.Insert(req.task_id, task)) {
    dup_tasks_->Inc();
    TS_LOG(kWarn) << "w" << id_ << ": dropped duplicate serve request for task "
                  << req.task_id;
    return;
  }

  if (req.parent_worker < 0) {
    {
      std::lock_guard<std::mutex> lock(task->mu);
      task->ix = IotaRows(req.n_rows);
    }
    ServeColumns(task);
  } else {
    RequestIx(req.parent_task, req.parent_worker, req.side, req.task_id);
  }
}

void Worker::ServeColumns(const TaskPtr& task) {
  ColumnDataResponse resp;
  int key_worker;
  uint64_t task_id;
  {
    std::lock_guard<std::mutex> lock(task->mu);
    const ColumnDataRequest& req = task->serve;
    resp.task_id = req.task_id;
    resp.compress = compress_transfers_;
    resp.columns = req.columns;
    resp.data.reserve(req.columns.size());
    for (int32_t col : req.columns) {
      resp.data.push_back(table_->column(col)->Gather(*task->ix));
    }
    key_worker = req.key_worker;
    task_id = req.task_id;
  }
  link_.Send(ChannelKind::kData,
             Message{id_, key_worker,
                     static_cast<uint32_t>(MsgType::kColumnDataResponse),
                     resp.Encode(), task_id});
  tasks_.Erase(task_id);
}

void Worker::HandleColumnDataResponse(const std::string& payload) {
  ColumnDataResponse resp;
  if (Status st = ColumnDataResponse::Decode(payload, &resp); !st.ok()) {
    TS_LOG(kError) << "w" << id_ << ": bad column response: " << st.ToString();
    return;
  }
  TaskPtr task = Find(resp.task_id);
  if (task == nullptr) return;
  if (resp.columns.empty()) return;
  std::lock_guard<std::mutex> lock(task->mu);
  if (task->awaiting_remote == 0 ||
      std::find(task->gathered_cols.begin(), task->gathered_cols.end(),
                resp.columns[0]) != task->gathered_cols.end()) {
    // Replayed column batch: its columns are already gathered (or all
    // batches are in) — appending again would corrupt the subset.
    dup_tasks_->Inc();
    TS_LOG(kWarn) << "w" << id_ << ": dropped duplicate column data for task "
                  << resp.task_id;
    return;
  }
  int64_t bytes = 0;
  for (size_t i = 0; i < resp.columns.size(); ++i) {
    task->gathered_cols.push_back(resp.columns[i]);
    bytes += static_cast<int64_t>(resp.data[i]->ByteSize());
    task->gathered_data.push_back(std::move(resp.data[i]));
  }
  task->ChargeMemory(bytes);
  --task->awaiting_remote;
  CheckSubtreeReady(task, resp.task_id);
}

void Worker::CheckSubtreeReady(const TaskPtr& task, uint64_t task_id) {
  // Caller holds task->mu.
  if (task->ix == nullptr || task->sent_to_compute) return;

  // Local columns are gathered once I_x is here (they were not
  // requested over the network).
  if (!task->local_gathered) {
    int64_t bytes = 0;
    const SubtreeTaskPlan& plan = task->splan;
    for (size_t i = 0; i < plan.columns.size(); ++i) {
      if (plan.column_servers[i] == id_) {
        ColumnPtr g = table_->column(plan.columns[i])->Gather(*task->ix);
        bytes += static_cast<int64_t>(g->ByteSize());
        task->gathered_cols.push_back(plan.columns[i]);
        task->gathered_data.push_back(std::move(g));
      }
    }
    task->ChargeMemory(bytes);
    task->local_gathered = true;
  }

  if (task->awaiting_remote == 0) {
    task->sent_to_compute = true;
    btask_.Push(ReadyTask{TaskKindTag::kSubtree, task_id});
  }
}

// ---------------------------------------------------------------------
// Compers.
// ---------------------------------------------------------------------

void Worker::HandleTraceRequest() {
  TraceSnapshotMsg snap;
  snap.worker = id_;
  snap.dropped = Tracer::Global().dropped_spans();
  snap.events = Tracer::Global().SnapshotEvents();
  network_->Send(ChannelKind::kTrace,
                 Message{id_, kMasterRank,
                         static_cast<uint32_t>(MsgType::kTraceSnapshot),
                         snap.Encode()});
}

void Worker::ComperLoop() {
  while (auto ready = btask_.Pop()) {
    TaskPtr task = Find(ready->task_id);
    if (task == nullptr) continue;  // revoked while queued
    if (debug_slow_task_ms_ > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(debug_slow_task_ms_));
    }
    const bool is_column = ready->kind == TaskKindTag::kColumn;
    TraceSpan span(
        is_column ? TraceCat::kColumnTask : TraceCat::kSubtreeTask,
        is_column ? "compute-column" : "compute-subtree", ready->task_id);
    uint64_t start = NowNanos();
    if (is_column) {
      ComputeColumnTask(task);
    } else {
      ComputeSubtreeTask(task);
    }
    if (busy_clock_ != nullptr) busy_clock_->AddNanos(NowNanos() - start);
    computed_.Inc();
    computed_counter_->Inc();
  }
}

std::shared_ptr<const BinnedTable> Worker::GetBinned(int max_bins) {
  std::lock_guard<std::mutex> lock(binned_mu_);
  std::shared_ptr<const BinnedTable>& slot = binned_[max_bins];
  if (slot == nullptr) slot = BinnedTable::Build(*table_, max_bins);
  return slot;
}

SplitOutcome Worker::HistogramColumnSplit(const TaskPtr& task,
                                          const ColumnTaskPlan& plan,
                                          int32_t col, const BinnedColumn& bc,
                                          const SplitContext& ctx,
                                          const std::vector<uint32_t>& ix) {
  // Only classification histograms go through the sibling cache:
  // integer counts make `parent - sibling` bit-identical to a direct
  // build, so a cache hit can never change the split outcome (and thus
  // cannot perturb in-process vs TCP determinism). Regression sums
  // would re-associate, so they are always built directly.
  const bool cacheable = ctx.kind == TaskKind::kClassification;
  NodeHistogram hist;
  bool derived = false;
  TaskPtr parent;
  if (cacheable && plan.parent_worker == id_) {
    parent = Find(plan.parent_task);
  }
  if (parent != nullptr) {
    std::lock_guard<std::mutex> lock(parent->mu);
    auto pit = parent->col_hists.find(col);
    auto sit = parent->child_col_hists[1 - plan.side].find(col);
    if (pit != parent->col_hists.end() &&
        sit != parent->child_col_hists[1 - plan.side].end() &&
        pit->second.CompatibleWith(sit->second)) {
      hist = NodeHistogram::Subtract(pit->second, sit->second);
      derived = true;
    }
  }
  if (!derived) {
    hist = NodeHistogram::Build(bc, *table_->target(), ctx, ix.data(),
                                ix.size());
  }
  if (cacheable) {
    if (parent != nullptr) {
      std::lock_guard<std::mutex> lock(parent->mu);
      auto inserted = parent->child_col_hists[plan.side].emplace(col, hist);
      if (inserted.second) {
        parent->ChargeMemory(static_cast<int64_t>(hist.ByteSize()));
      }
    }
    {
      // Park a copy on this task: if it becomes the delegate, its
      // children's column tasks on this worker subtract instead of
      // rebuilding. Freed with the task object (verdict or release).
      std::lock_guard<std::mutex> lock(task->mu);
      auto inserted = task->col_hists.emplace(col, hist);
      if (inserted.second) {
        task->ChargeMemory(static_cast<int64_t>(hist.ByteSize()));
      }
    }
  }
  return hist.BestSplit(bc, col, ctx);
}

void Worker::ComputeColumnTask(const TaskPtr& task) {
  ColumnTaskPlan plan;
  std::shared_ptr<std::vector<uint32_t>> ix;
  {
    std::lock_guard<std::mutex> lock(task->mu);
    plan = task->cplan;
    ix = task->ix;
  }
  const Schema& schema = table_->schema();
  SplitContext ctx{schema.task_kind(),
                   static_cast<Impurity>(plan.ctx.impurity),
                   schema.num_classes()};
  const ColumnPtr& target = table_->target();

  ColumnTaskResponse resp;
  resp.task_id = plan.task_id;
  resp.worker = id_;
  resp.node_stats = ComputeTargetStats(*target, ctx, ix->data(), ix->size());

  if (plan.ctx.extra_trees != 0) {
    Rng rng(plan.ctx.rng_seed);
    for (int32_t col : plan.columns) {
      SplitOutcome o = FindRandomSplit(*table_->column(col), col, *target,
                                       ctx, ix->data(), ix->size(), &rng);
      if (SplitBeats(o, resp.outcome)) resp.outcome = std::move(o);
    }
  } else if (plan.ctx.split_method ==
             static_cast<uint8_t>(SplitMethod::kHistogram)) {
    std::shared_ptr<const BinnedTable> binned = GetBinned(plan.ctx.max_bins);
    for (int32_t col : plan.columns) {
      const BinnedColumn* bc = binned->column(col);
      SplitOutcome o =
          bc != nullptr
              ? HistogramColumnSplit(task, plan, col, *bc, ctx, *ix)
              : FindBestSplit(*table_->column(col), col, *target, ctx,
                              ix->data(), ix->size());
      if (SplitBeats(o, resp.outcome)) resp.outcome = std::move(o);
    }
  } else {
    for (int32_t col : plan.columns) {
      SplitOutcome o = FindBestSplit(*table_->column(col), col, *target, ctx,
                                     ix->data(), ix->size());
      if (SplitBeats(o, resp.outcome)) resp.outcome = std::move(o);
    }
  }

  bool sent = link_.Send(
      ChannelKind::kTask,
      Message{id_, kMasterRank,
              static_cast<uint32_t>(MsgType::kColumnTaskResponse),
              resp.Encode(), plan.task_id});
  TS_LOG(kDebug) << "w" << id_ << ": responded task " << plan.task_id
                 << " sent=" << sent;
  // The task object stays in T_task awaiting the master's verdict.
}

void Worker::ComputeSubtreeTask(const TaskPtr& task) {
  SubtreeTaskPlan plan;
  std::shared_ptr<std::vector<uint32_t>> ix;
  std::vector<int32_t> cols;
  std::vector<ColumnPtr> data;
  {
    std::lock_guard<std::mutex> lock(task->mu);
    plan = task->splan;
    ix = task->ix;
    cols = std::move(task->gathered_cols);
    data = std::move(task->gathered_data);
  }

  const Schema& schema = table_->schema();
  std::vector<ColumnPtr> slots(schema.num_columns());
  for (size_t i = 0; i < cols.size(); ++i) slots[cols[i]] = data[i];
  // Y is replicated on every worker; gather it locally.
  slots[schema.target_index()] = table_->target()->Gather(*ix);

  DataTable gathered =
      DataTable::ForGatheredSubset(schema, std::move(slots), ix->size());

  TreeConfig config;
  config.max_depth = plan.ctx.max_depth;
  config.min_leaf = plan.ctx.min_leaf;
  config.impurity = static_cast<Impurity>(plan.ctx.impurity);
  config.extra_trees = plan.ctx.extra_trees != 0;
  config.base_depth = plan.depth;
  config.split_method = static_cast<SplitMethod>(plan.ctx.split_method);
  config.max_bins = plan.ctx.max_bins;
  std::vector<int> candidates(plan.columns.begin(), plan.columns.end());
  // Histogram mode: re-code the gathered subset against the global
  // bin boundaries so the subtree splits on exactly the bins a
  // full-table view would use.
  std::shared_ptr<const BinnedTable> bound;
  if (config.split_method == SplitMethod::kHistogram &&
      !config.extra_trees) {
    bound = BinnedTable::BindGathered(*GetBinned(config.max_bins), gathered,
                                      candidates);
  }
  std::vector<uint32_t> rows(ix->size());
  std::iota(rows.begin(), rows.end(), 0u);
  Rng rng(plan.ctx.rng_seed);
  TreeModel subtree = TrainTree(gathered, std::move(rows), candidates, config,
                                &rng, bound.get());

  SubtreeResult result;
  result.task_id = plan.task_id;
  result.worker = id_;
  BinaryWriter w;
  subtree.Serialize(&w);
  result.tree_bytes = w.Release();
  link_.Send(ChannelKind::kTask,
             Message{id_, kMasterRank,
                     static_cast<uint32_t>(MsgType::kSubtreeResult),
                     result.Encode(), plan.task_id});
  tasks_.Erase(plan.task_id);
}

}  // namespace treeserver
