#include "engine/messages.h"

#include "common/trace_merge.h"

namespace treeserver {

void TaskContext::Serialize(BinaryWriter* w) const {
  w->Write(impurity);
  w->Write(max_depth);
  w->Write(min_leaf);
  w->Write(extra_trees);
  w->Write(rng_seed);
  w->Write(split_method);
  w->Write(max_bins);
}

Status TaskContext::Deserialize(BinaryReader* r, TaskContext* out) {
  TS_RETURN_IF_ERROR(r->Read(&out->impurity));
  TS_RETURN_IF_ERROR(r->Read(&out->max_depth));
  TS_RETURN_IF_ERROR(r->Read(&out->min_leaf));
  TS_RETURN_IF_ERROR(r->Read(&out->extra_trees));
  TS_RETURN_IF_ERROR(r->Read(&out->rng_seed));
  TS_RETURN_IF_ERROR(r->Read(&out->split_method));
  TS_RETURN_IF_ERROR(r->Read(&out->max_bins));
  return Status::OK();
}

namespace {

// Shared prefix of both plan kinds.
template <typename Plan>
void WritePlanHeader(const Plan& p, BinaryWriter* w) {
  w->Write(p.task_id);
  w->Write(p.tree_id);
  w->Write(p.node_id);
  w->Write(p.depth);
  w->Write(p.n_rows);
  w->Write(p.parent_worker);
  w->Write(p.parent_task);
  w->Write(p.side);
}

template <typename Plan>
Status ReadPlanHeader(BinaryReader* r, Plan* p) {
  TS_RETURN_IF_ERROR(r->Read(&p->task_id));
  TS_RETURN_IF_ERROR(r->Read(&p->tree_id));
  TS_RETURN_IF_ERROR(r->Read(&p->node_id));
  TS_RETURN_IF_ERROR(r->Read(&p->depth));
  TS_RETURN_IF_ERROR(r->Read(&p->n_rows));
  TS_RETURN_IF_ERROR(r->Read(&p->parent_worker));
  TS_RETURN_IF_ERROR(r->Read(&p->parent_task));
  TS_RETURN_IF_ERROR(r->Read(&p->side));
  return Status::OK();
}

}  // namespace

std::string ColumnTaskPlan::Encode() const {
  BinaryWriter w;
  WritePlanHeader(*this, &w);
  w.WriteVector(columns);
  ctx.Serialize(&w);
  return w.Release();
}

Status ColumnTaskPlan::Decode(const std::string& payload,
                              ColumnTaskPlan* out) {
  BinaryReader r(payload);
  TS_RETURN_IF_ERROR(ReadPlanHeader(&r, out));
  TS_RETURN_IF_ERROR(r.ReadVector(&out->columns));
  TS_RETURN_IF_ERROR(TaskContext::Deserialize(&r, &out->ctx));
  return Status::OK();
}

std::string SubtreeTaskPlan::Encode() const {
  BinaryWriter w;
  WritePlanHeader(*this, &w);
  w.WriteVector(columns);
  w.WriteVector(column_servers);
  ctx.Serialize(&w);
  return w.Release();
}

Status SubtreeTaskPlan::Decode(const std::string& payload,
                               SubtreeTaskPlan* out) {
  BinaryReader r(payload);
  TS_RETURN_IF_ERROR(ReadPlanHeader(&r, out));
  TS_RETURN_IF_ERROR(r.ReadVector(&out->columns));
  TS_RETURN_IF_ERROR(r.ReadVector(&out->column_servers));
  TS_RETURN_IF_ERROR(TaskContext::Deserialize(&r, &out->ctx));
  return Status::OK();
}

std::string ColumnTaskResponse::Encode() const {
  BinaryWriter w;
  w.Write(task_id);
  w.Write(worker);
  node_stats.Serialize(&w);
  outcome.Serialize(&w);
  return w.Release();
}

Status ColumnTaskResponse::Decode(const std::string& payload,
                                  ColumnTaskResponse* out) {
  BinaryReader r(payload);
  TS_RETURN_IF_ERROR(r.Read(&out->task_id));
  TS_RETURN_IF_ERROR(r.Read(&out->worker));
  TS_RETURN_IF_ERROR(TargetStats::Deserialize(&r, &out->node_stats));
  TS_RETURN_IF_ERROR(SplitOutcome::Deserialize(&r, &out->outcome));
  return Status::OK();
}

std::string BestSplitNotify::Encode() const {
  BinaryWriter w;
  w.Write(task_id);
  w.Write(is_delegate);
  condition.Serialize(&w);
  return w.Release();
}

Status BestSplitNotify::Decode(const std::string& payload,
                               BestSplitNotify* out) {
  BinaryReader r(payload);
  TS_RETURN_IF_ERROR(r.Read(&out->task_id));
  TS_RETURN_IF_ERROR(r.Read(&out->is_delegate));
  TS_RETURN_IF_ERROR(SplitCondition::Deserialize(&r, &out->condition));
  return Status::OK();
}

std::string SubtreeResult::Encode() const {
  BinaryWriter w;
  w.Write(task_id);
  w.Write(worker);
  w.WriteString(tree_bytes);
  return w.Release();
}

Status SubtreeResult::Decode(const std::string& payload, SubtreeResult* out) {
  BinaryReader r(payload);
  TS_RETURN_IF_ERROR(r.Read(&out->task_id));
  TS_RETURN_IF_ERROR(r.Read(&out->worker));
  TS_RETURN_IF_ERROR(r.ReadString(&out->tree_bytes));
  return Status::OK();
}

std::string IxRequest::Encode() const {
  BinaryWriter w;
  w.Write(parent_task);
  w.Write(side);
  w.Write(requester_task);
  w.Write(requester_worker);
  return w.Release();
}

Status IxRequest::Decode(const std::string& payload, IxRequest* out) {
  BinaryReader r(payload);
  TS_RETURN_IF_ERROR(r.Read(&out->parent_task));
  TS_RETURN_IF_ERROR(r.Read(&out->side));
  TS_RETURN_IF_ERROR(r.Read(&out->requester_task));
  TS_RETURN_IF_ERROR(r.Read(&out->requester_worker));
  return Status::OK();
}

void WriteRowIds(BinaryWriter* w, const std::vector<uint32_t>& rows,
                 bool compress) {
  w->Write(static_cast<uint8_t>(compress ? 1 : 0));
  if (!compress) {
    w->WriteVector(rows);
    return;
  }
  WriteVarint64(w, rows.size());
  uint32_t prev = 0;
  for (uint32_t row : rows) {
    // Row ids are ascending by construction (iota roots, order-
    // preserving delegate splits), so deltas are small non-negatives.
    WriteVarint64(w, row - prev);
    prev = row;
  }
}

Status ReadRowIds(BinaryReader* r, std::vector<uint32_t>* rows) {
  uint8_t encoding;
  TS_RETURN_IF_ERROR(r->Read(&encoding));
  if (encoding == 0) return r->ReadVector(rows);
  uint64_t count;
  TS_RETURN_IF_ERROR(ReadVarint64(r, &count));
  // Each delta varint is at least one byte; a hostile count larger
  // than the remaining payload must not reach reserve().
  if (count > r->remaining()) {
    return Status::Corruption("row-id count exceeds payload");
  }
  rows->clear();
  rows->reserve(count);
  uint64_t prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t delta;
    TS_RETURN_IF_ERROR(ReadVarint64(r, &delta));
    prev += delta;
    rows->push_back(static_cast<uint32_t>(prev));
  }
  return Status::OK();
}

std::string IxResponse::Encode() const {
  BinaryWriter w;
  w.Write(requester_task);
  WriteRowIds(&w, rows, compress);
  return w.Release();
}

Status IxResponse::Decode(const std::string& payload, IxResponse* out) {
  BinaryReader r(payload);
  TS_RETURN_IF_ERROR(r.Read(&out->requester_task));
  TS_RETURN_IF_ERROR(ReadRowIds(&r, &out->rows));
  return Status::OK();
}

std::string ColumnDataRequest::Encode() const {
  BinaryWriter w;
  w.Write(task_id);
  w.Write(tree_id);
  w.WriteVector(columns);
  w.Write(key_worker);
  w.Write(parent_worker);
  w.Write(parent_task);
  w.Write(side);
  w.Write(n_rows);
  return w.Release();
}

Status ColumnDataRequest::Decode(const std::string& payload,
                                 ColumnDataRequest* out) {
  BinaryReader r(payload);
  TS_RETURN_IF_ERROR(r.Read(&out->task_id));
  TS_RETURN_IF_ERROR(r.Read(&out->tree_id));
  TS_RETURN_IF_ERROR(r.ReadVector(&out->columns));
  TS_RETURN_IF_ERROR(r.Read(&out->key_worker));
  TS_RETURN_IF_ERROR(r.Read(&out->parent_worker));
  TS_RETURN_IF_ERROR(r.Read(&out->parent_task));
  TS_RETURN_IF_ERROR(r.Read(&out->side));
  TS_RETURN_IF_ERROR(r.Read(&out->n_rows));
  return Status::OK();
}

namespace {

// Wire tags for SerializeColumn.
constexpr uint8_t kWireNumeric = 0;
constexpr uint8_t kWireCategoricalRaw = 1;
constexpr uint8_t kWireCategoricalPacked = 2;

int BitsFor(uint32_t distinct) {
  int bits = 1;
  while ((1u << bits) < distinct) ++bits;
  return bits;
}

}  // namespace

void SerializeColumn(const Column& column, BinaryWriter* w, bool compress) {
  if (column.type() == DataType::kNumeric) {
    w->Write(kWireNumeric);
    w->WriteString(column.name());
    w->WriteVector(column.numeric_values());
    return;
  }
  if (!compress) {
    w->Write(kWireCategoricalRaw);
    w->WriteString(column.name());
    w->Write(column.cardinality());
    w->WriteVector(column.categorical_codes());
    return;
  }
  // Bit-packed: codes in [0, card] where `card` itself encodes a
  // missing value.
  const int32_t card = column.cardinality();
  const int bits = BitsFor(static_cast<uint32_t>(card) + 1);
  const auto& codes = column.categorical_codes();
  w->Write(kWireCategoricalPacked);
  w->WriteString(column.name());
  w->Write(card);
  w->Write(static_cast<uint8_t>(bits));
  WriteVarint64(w, codes.size());
  uint64_t buffer = 0;
  int filled = 0;
  for (int32_t code : codes) {
    uint64_t v = code == kMissingCategory ? static_cast<uint64_t>(card)
                                          : static_cast<uint64_t>(code);
    buffer |= v << filled;
    filled += bits;
    while (filled >= 8) {
      w->Write(static_cast<uint8_t>(buffer & 0xFF));
      buffer >>= 8;
      filled -= 8;
    }
  }
  if (filled > 0) w->Write(static_cast<uint8_t>(buffer & 0xFF));
}

Status DeserializeColumn(BinaryReader* r, ColumnPtr* out) {
  uint8_t tag;
  TS_RETURN_IF_ERROR(r->Read(&tag));
  std::string name;
  TS_RETURN_IF_ERROR(r->ReadString(&name));
  if (tag == kWireNumeric) {
    std::vector<double> values;
    TS_RETURN_IF_ERROR(r->ReadVector(&values));
    *out = Column::Numeric(std::move(name), std::move(values));
    return Status::OK();
  }
  if (tag == kWireCategoricalRaw) {
    int32_t cardinality;
    TS_RETURN_IF_ERROR(r->Read(&cardinality));
    std::vector<int32_t> codes;
    TS_RETURN_IF_ERROR(r->ReadVector(&codes));
    *out = Column::Categorical(std::move(name), std::move(codes), cardinality);
    return Status::OK();
  }
  if (tag != kWireCategoricalPacked) {
    return Status::Corruption("unknown column wire tag");
  }
  int32_t card;
  TS_RETURN_IF_ERROR(r->Read(&card));
  uint8_t bits;
  TS_RETURN_IF_ERROR(r->Read(&bits));
  uint64_t count;
  TS_RETURN_IF_ERROR(ReadVarint64(r, &count));
  if (card < 0 || bits == 0 || bits > 32) {
    return Status::Corruption("packed column: bad cardinality/bit width");
  }
  // `count` codes occupy ceil(count*bits/8) bytes; reject counts the
  // remaining payload cannot possibly hold before reserving.
  if (count / 8 > r->remaining() / bits ||
      (count * bits + 7) / 8 > r->remaining()) {
    return Status::Corruption("packed column: count exceeds payload");
  }
  std::vector<int32_t> codes;
  codes.reserve(count);
  uint64_t buffer = 0;
  int filled = 0;
  const uint64_t mask = (1ull << bits) - 1;
  for (uint64_t i = 0; i < count; ++i) {
    while (filled < bits) {
      uint8_t byte;
      TS_RETURN_IF_ERROR(r->Read(&byte));
      buffer |= static_cast<uint64_t>(byte) << filled;
      filled += 8;
    }
    uint64_t v = buffer & mask;
    buffer >>= bits;
    filled -= bits;
    codes.push_back(v == static_cast<uint64_t>(card)
                        ? kMissingCategory
                        : static_cast<int32_t>(v));
  }
  *out = Column::Categorical(std::move(name), std::move(codes), card);
  return Status::OK();
}

std::string ColumnDataResponse::Encode() const {
  BinaryWriter w;
  w.Write(task_id);
  w.WriteVector(columns);
  w.Write(static_cast<uint64_t>(data.size()));
  for (const ColumnPtr& c : data) SerializeColumn(*c, &w, compress);
  return w.Release();
}

Status ColumnDataResponse::Decode(const std::string& payload,
                                  ColumnDataResponse* out) {
  BinaryReader r(payload);
  TS_RETURN_IF_ERROR(r.Read(&out->task_id));
  TS_RETURN_IF_ERROR(r.ReadVector(&out->columns));
  uint64_t count;
  TS_RETURN_IF_ERROR(r.Read(&count));
  // Every serialized column is at least a tag byte plus a name length;
  // bound the resize by what the payload could possibly carry.
  if (count > r.remaining()) {
    return Status::Corruption("column count exceeds payload");
  }
  out->data.resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    TS_RETURN_IF_ERROR(DeserializeColumn(&r, &out->data[i]));
  }
  return Status::OK();
}

std::string TraceSnapshotMsg::Encode() const {
  BinaryWriter w;
  w.Write(worker);
  w.Write(dropped);
  SerializeTraceEvents(events, &w);
  return w.Release();
}

Status TraceSnapshotMsg::Decode(const std::string& payload,
                                TraceSnapshotMsg* out) {
  BinaryReader r(payload);
  TS_RETURN_IF_ERROR(r.Read(&out->worker));
  TS_RETURN_IF_ERROR(r.Read(&out->dropped));
  return DeserializeTraceEvents(&r, &out->events);
}

std::string TaskIdOnly::Encode() const {
  BinaryWriter w;
  w.Write(task_id);
  return w.Release();
}

Status TaskIdOnly::Decode(const std::string& payload, TaskIdOnly* out) {
  BinaryReader r(payload);
  return r.Read(&out->task_id);
}

std::string TreeIdOnly::Encode() const {
  BinaryWriter w;
  w.Write(tree_id);
  return w.Release();
}

Status TreeIdOnly::Decode(const std::string& payload, TreeIdOnly* out) {
  BinaryReader r(payload);
  return r.Read(&out->tree_id);
}

}  // namespace treeserver
