#ifndef TREESERVER_ENGINE_WORKER_H_
#define TREESERVER_ENGINE_WORKER_H_

#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "concurrent/blocking_queue.h"
#include "concurrent/concurrent_hash_map.h"
#include "engine/messages.h"
#include "engine/reliable.h"
#include "rpc/transport.h"
#include "table/binned.h"
#include "table/data_table.h"
#include "tree/hist.h"

namespace treeserver {

/// Point-in-time worker-side statistics (part of EngineStats).
struct WorkerStats {
  int worker = -1;
  /// Task objects parked in the worker's T_task (waiting for data,
  /// executing, or serving I_x as a delegate).
  size_t tasks_parked = 0;
  /// Ready tasks queued in B_task, waiting for a free comper.
  size_t btask_depth = 0;
  uint64_t tasks_computed = 0;
  /// Aggregate comper busy time so far, in seconds.
  double busy_seconds = 0.0;
};

/// A TreeServer worker machine (Fig. 7 / Fig. 14(b)).
///
/// Runs three kinds of threads:
///  - θ_main: drains the task channel (plans and verdicts from the
///    master), posting data requests for new tasks;
///  - θ_recv: drains the data channel (I_x and column-data traffic),
///    moving tasks whose data is complete into the task buffer B_task;
///  - compers: pop ready tasks from B_task, compute, and send results
///    to the master.
///
/// Tasks waiting for data park in the task table T_task without
/// occupying a comper — the T-thinker suspension that overlaps
/// communication with computation.
class Worker {
 public:
  /// `debug_slow_task_ms` > 0 makes every task computation sleep that
  /// long first — a deterministic straggler for watchdog tests.
  Worker(int id, std::shared_ptr<const DataTable> table, Transport* network,
         int num_compers, PeakGauge* task_memory, BusyClock* busy_clock,
         bool compress_transfers = false, int debug_slow_task_ms = 0,
         ReliableOptions reliable = ReliableOptions());
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  void Start();
  /// Joins all threads; queues must be closed first (by the cluster).
  void Join();

  int id() const { return id_; }
  /// Number of task objects currently parked (for tests/diagnostics).
  size_t num_pending_tasks() const { return tasks_.size(); }
  uint64_t tasks_computed() const { return computed_.value(); }

  /// Snapshot of queue depths and work counters. Thread-safe.
  WorkerStats GetStats() const;

 private:
  enum class TaskKindTag : uint8_t { kColumn, kSubtree, kServe };

  /// One entry of the worker's task table T_task. Guarded by `mu`
  /// (threads take a shared_ptr out of the map, then lock).
  struct TaskState {
    explicit TaskState(PeakGauge* gauge) : memory_gauge(gauge) {}
    ~TaskState() {
      if (memory_gauge != nullptr && mem_bytes > 0) {
        memory_gauge->Sub(mem_bytes);
      }
    }

    std::mutex mu;
    TaskKindTag kind = TaskKindTag::kColumn;
    uint32_t tree_id = 0;

    ColumnTaskPlan cplan;
    SubtreeTaskPlan splan;
    ColumnDataRequest serve;

    std::shared_ptr<std::vector<uint32_t>> ix;
    bool sent_to_compute = false;

    // Subtree gathering state.
    std::vector<int32_t> gathered_cols;
    std::vector<ColumnPtr> gathered_data;
    size_t awaiting_remote = 0;
    bool local_gathered = false;

    // Delegate duty (column-tasks that won the split).
    bool is_delegate = false;
    bool split_done = false;
    SplitCondition delegate_condition;
    std::shared_ptr<std::vector<uint32_t>> ix_left;
    std::shared_ptr<std::vector<uint32_t>> ix_right;
    std::vector<IxRequest> queued_requests;

    // Histogram-mode sibling-subtraction cache (classification only,
    // where integer counts make parent - sibling bit-identical to a
    // direct build, so cache hits cannot perturb determinism). A
    // column task parks its per-column histograms here; child column
    // tasks running on this worker derive theirs from the delegate's
    // parent histogram minus the sibling's, when both are present.
    std::map<int32_t, NodeHistogram> col_hists;
    std::map<int32_t, NodeHistogram> child_col_hists[2];  // by ChildSide

    // Task-memory accounting (Table III); released by the destructor.
    PeakGauge* memory_gauge = nullptr;
    int64_t mem_bytes = 0;
    void ChargeMemory(int64_t bytes) {
      mem_bytes += bytes;
      if (memory_gauge != nullptr) memory_gauge->Add(bytes);
    }
  };
  using TaskPtr = std::shared_ptr<TaskState>;

  struct ReadyTask {
    TaskKindTag kind;
    uint64_t task_id;
  };

  void TaskLoop();
  void DataLoop();
  void ComperLoop();

  // Task-channel handlers (θ_main).
  void HandleColumnTaskPlan(const std::string& payload);
  void HandleSubtreeTaskPlan(const std::string& payload);
  void HandleBestSplitNotify(const std::string& payload);
  void HandleTaskDelete(const std::string& payload);
  void HandleParentRelease(const std::string& payload);
  void HandleTreeRevoke(const std::string& payload);
  /// Snapshots the process-global tracer and ships it to the master on
  /// the low-priority trace channel (answer to kTraceRequest).
  void HandleTraceRequest();

  // Data-channel handlers (θ_recv).
  void HandleIxRequest(const std::string& payload);
  void HandleIxResponse(const std::string& payload);
  void HandleColumnDataRequest(const std::string& payload);
  void HandleColumnDataResponse(const std::string& payload);

  // Comper computations.
  void ComputeColumnTask(const TaskPtr& task);
  void ComputeSubtreeTask(const TaskPtr& task);

  void ServeIx(const TaskPtr& task, const IxRequest& req);
  void ServeColumns(const TaskPtr& task);
  /// Gathers this worker's local columns for a subtree task and moves
  /// it to B_task when all data is present. Caller holds task->mu.
  void CheckSubtreeReady(const TaskPtr& task, uint64_t task_id);

  TaskPtr Find(uint64_t task_id);
  std::shared_ptr<std::vector<uint32_t>> IotaRows(uint64_t n) const;
  void RequestIx(uint64_t parent_task, int parent_worker, uint8_t side,
                 uint64_t requester_task);

  /// Lazily-built binned view of the full table, shared by every
  /// histogram-mode task with the same bin budget.
  std::shared_ptr<const BinnedTable> GetBinned(int max_bins);
  /// Histogram split of one column for a column task: derives the
  /// histogram from the parent delegate's cache when possible
  /// (classification), else builds it, then registers it for siblings
  /// and children. Returns the column's best split.
  SplitOutcome HistogramColumnSplit(const TaskPtr& task,
                                    const ColumnTaskPlan& plan, int32_t col,
                                    const BinnedColumn& bc,
                                    const SplitContext& ctx,
                                    const std::vector<uint32_t>& ix);

  const int id_;
  const std::shared_ptr<const DataTable> table_;
  Transport* const network_;
  /// Ack/retransmit + dedup/fencing layer over network_ for the
  /// engine protocol messages; all reliable-type sends and both
  /// receive loops route through it.
  ReliableLink link_;
  const int num_compers_;
  PeakGauge* const task_memory_;
  BusyClock* const busy_clock_;
  const bool compress_transfers_;
  const int debug_slow_task_ms_;

  ConcurrentHashMap<uint64_t, TaskPtr> tasks_;
  BlockingQueue<ReadyTask> btask_;
  Counter computed_;
  Counter* const computed_counter_;  // "engine.tasks_computed"
  Counter* const dup_tasks_;        // "engine.duplicate_tasks"

  std::mutex binned_mu_;
  std::map<int, std::shared_ptr<const BinnedTable>> binned_;  // by max_bins

  std::thread task_thread_;
  std::thread data_thread_;
  std::vector<std::thread> compers_;
};

}  // namespace treeserver

#endif  // TREESERVER_ENGINE_WORKER_H_
