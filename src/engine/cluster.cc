#include "engine/cluster.h"

#include "common/logging.h"
#include "engine/stats_reporter.h"

namespace treeserver {

TreeServerCluster::TreeServerCluster(DataTable table, EngineConfig config)
    : config_(config) {
  TS_CHECK(config_.num_workers > 0);
  TS_CHECK(config_.compers_per_worker > 0);
  TS_CHECK(config_.tau_d <= config_.tau_dfs)
      << "τ_D must not exceed τ_dfs (Fig. 4)";
  table_ = std::make_shared<const DataTable>(std::move(table));
  network_ = std::make_unique<Network>(config_.num_workers,
                                       config_.bandwidth_mbps);
  task_memory_ = std::make_unique<PeakGauge>();
  master_ = std::make_unique<Master>(table_, network_.get(), config_);
  for (int i = 0; i < config_.num_workers; ++i) {
    busy_clocks_.push_back(std::make_unique<BusyClock>());
    workers_.push_back(std::make_unique<Worker>(
        i, table_, network_.get(), config_.compers_per_worker,
        task_memory_.get(), busy_clocks_.back().get(),
        config_.compress_transfers,
        i == config_.debug_slow_worker ? config_.debug_slow_task_ms : 0,
        config_.ReliableConfig()));
  }
  master_->Start();
  for (auto& w : workers_) w->Start();
  if (config_.stats_period_ms > 0) {
    stats_reporter_ = std::make_unique<StatsReporter>(
        [this] { return GetEngineStats(); }, config_.stats_period_ms);
    stats_reporter_->Start();
  }
}

TreeServerCluster::~TreeServerCluster() {
  // The reporter reads master/worker/network state, so it must die
  // first. Then stop the master loops (no new plans) and unblock every
  // worker thread by closing the queues.
  stats_reporter_.reset();
  master_->Stop();
  network_->CloseAll();
  for (auto& w : workers_) w->Join();
}

ForestModel TreeServerCluster::Wait(uint32_t job_id) {
  ForestModel model = master_->Wait(job_id);
  if (stats_reporter_ != nullptr) stats_reporter_->ReportNow("job-complete");
  return model;
}

void TreeServerCluster::CrashWorker(int worker) {
  TS_CHECK(worker >= 0 && worker < config_.num_workers);
  network_->SetCrashed(worker);
  workers_[worker]->Join();  // the dead machine's threads exit
  master_->OnWorkerCrash(worker);
}

void TreeServerCluster::FailoverMaster() {
  TS_LOG(kDebug) << "failover: checkpointing";
  std::string snapshot = master_->Checkpoint();
  TS_LOG(kDebug) << "failover: stopping old master";
  master_->Stop();  // joins both threads and closes the master mailbox
  network_->master_queue().Reopen();
  // The new master knows nothing of in-flight tasks: wipe worker-side
  // task state so no stale delegate objects linger.
  for (int w = 0; w < config_.num_workers; ++w) {
    if (!network_->IsCrashed(w)) {
      network_->Send(ChannelKind::kTask,
                     Message{kMasterRank, w,
                             static_cast<uint32_t>(MsgType::kRevokeAll), ""});
    }
  }
  TS_LOG(kDebug) << "failover: old master stopped, restoring";
  auto fresh = std::make_unique<Master>(table_, network_.get(), config_);
  Status st = fresh->Restore(snapshot);
  TS_CHECK(st.ok()) << st.ToString();
  master_ = std::move(fresh);
  master_->Start();
  TS_LOG(kDebug) << "failover: new master started";
}

EngineMetrics TreeServerCluster::metrics() const {
  EngineMetrics m;
  m.bytes_sent_total = network_->total_bytes();
  for (const auto& clock : busy_clocks_) {
    m.comper_busy_seconds += clock->Seconds();
  }
  m.peak_task_memory_bytes = task_memory_->peak();
  m.tasks_scheduled = master_->tasks_scheduled();
  m.trees_completed = master_->trees_completed();
  m.trees_restarted = master_->trees_restarted();
  return m;
}

void TreeServerCluster::ResetMetrics() {
  network_->ResetCounters();
  for (auto& clock : busy_clocks_) clock->Reset();
  task_memory_->Reset();
}

EngineStats TreeServerCluster::GetEngineStats() const {
  EngineStats stats;
  stats.master = master_->GetStats();
  stats.workers.reserve(workers_.size());
  for (const auto& w : workers_) stats.workers.push_back(w->GetStats());
  stats.network = network_->GetStats();
  stats.task_memory_bytes = task_memory_->value();
  stats.task_memory_peak = task_memory_->peak();
  return stats;
}

}  // namespace treeserver
