#include "engine/stats_reporter.h"

#include <chrono>
#include <cstdarg>
#include <cstdio>

#include "common/metrics_registry.h"

namespace treeserver {

namespace {

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  *out += buf;
}

void AppendHistogramLine(std::string* out, const char* name,
                         const Histogram::Snapshot& h) {
  AppendF(out, "  %-22s n=%llu mean=%.1f p50=%llu p99=%llu max=%llu\n", name,
          static_cast<unsigned long long>(h.count), h.Mean(),
          static_cast<unsigned long long>(h.Percentile(0.50)),
          static_cast<unsigned long long>(h.Percentile(0.99)),
          static_cast<unsigned long long>(h.max));
}

}  // namespace

std::string FormatEngineStats(const EngineStats& stats) {
  std::string out;
  const MasterStats& m = stats.master;
  AppendF(&out,
          "[engine-stats] bplan=%zu tasks_in_flight=%zu (column=%llu "
          "subtree=%llu) pool=%d/%d jobs=%zu/%zu scheduled=%llu "
          "trees done=%llu restarted=%llu\n",
          m.bplan_depth, m.tasks_in_flight,
          static_cast<unsigned long long>(m.column_tasks_in_flight),
          static_cast<unsigned long long>(m.subtree_tasks_in_flight),
          m.active_trees, m.npool, m.jobs_completed, m.jobs_total,
          static_cast<unsigned long long>(m.tasks_scheduled),
          static_cast<unsigned long long>(m.trees_completed),
          static_cast<unsigned long long>(m.trees_restarted));
  AppendF(&out,
          "  task memory: %lld bytes (peak %lld)\n"
          "  %-6s %10s %10s %10s | %12s %12s %10s %9s %7s %8s %7s %8s "
          "%10s\n",
          static_cast<long long>(stats.task_memory_bytes),
          static_cast<long long>(stats.task_memory_peak), "worker",
          "pred.comp", "pred.send", "pred.recv", "sent(B)", "recv(B)",
          "busy(s)", "computed", "parked", "dropped", "reconn", "hb_miss",
          "sbuf_hwm");
  // On a TCP master node the workers are remote processes, so
  // stats.workers is empty; the per-worker transport columns still
  // have a row per endpoint.
  const size_t worker_rows =
      stats.workers.empty()
          ? (stats.network.endpoints.empty()
                 ? 0
                 : stats.network.endpoints.size() - 1)
          : stats.workers.size();
  for (size_t w = 0; w < worker_rows; ++w) {
    WorkerStats ws;
    if (w < stats.workers.size()) ws = stats.workers[w];
    MasterStats::WorkerLoad load;
    if (w < m.predicted_load.size()) load = m.predicted_load[w];
    NetworkStats::Endpoint ep;
    if (w < stats.network.endpoints.size()) ep = stats.network.endpoints[w];
    AppendF(&out,
            "  w%-5zu %10.0f %10.0f %10.0f | %12llu %12llu %10.3f %9llu "
            "%7zu %8llu %7llu %8llu %10llu\n",
            w, load.comp, load.send, load.recv,
            static_cast<unsigned long long>(ep.bytes_sent),
            static_cast<unsigned long long>(ep.bytes_recv), ws.busy_seconds,
            static_cast<unsigned long long>(ws.tasks_computed),
            ws.tasks_parked,
            static_cast<unsigned long long>(ep.msgs_dropped),
            static_cast<unsigned long long>(ep.reconnects),
            static_cast<unsigned long long>(ep.heartbeat_misses),
            static_cast<unsigned long long>(ep.send_buffer_hwm));
  }
  if (!stats.network.endpoints.empty()) {
    const NetworkStats::Endpoint& master_ep = stats.network.endpoints.back();
    AppendF(&out, "  master sent=%lluB recv=%lluB msgs=%llu dropped=%llu\n",
            static_cast<unsigned long long>(master_ep.bytes_sent),
            static_cast<unsigned long long>(master_ep.bytes_recv),
            static_cast<unsigned long long>(master_ep.msgs_sent),
            static_cast<unsigned long long>(master_ep.msgs_dropped));
  }
  AppendHistogramLine(&out, "task payload bytes", stats.network.task_payload_bytes);
  AppendHistogramLine(&out, "data payload bytes", stats.network.data_payload_bytes);
  AppendHistogramLine(&out, "task send micros", stats.network.task_send_micros);
  AppendHistogramLine(&out, "data send micros", stats.network.data_send_micros);
  // Split-kernel counters (process-global): how nodes found their
  // splits — sorted exact scans vs histogram builds, and how many
  // histograms were derived by sibling subtraction instead of built.
  MetricsRegistry& reg = MetricsRegistry::Global();
  AppendF(&out,
          "  split kernels: exact_sorts=%llu hist_builds=%llu "
          "sibling_subs=%llu\n",
          static_cast<unsigned long long>(
              reg.GetCounter("split.exact_sorts")->value()),
          static_cast<unsigned long long>(
              reg.GetCounter("split.histogram_builds")->value()),
          static_cast<unsigned long long>(
              reg.GetCounter("split.sibling_subtractions")->value()));
  // Reliability + fault-injection counters (process-global): what the
  // reliable-delivery layer absorbed and, when a chaos schedule is
  // active, what the injector actually did to the wire. All zeros on a
  // healthy, fault-free run.
  AppendF(&out,
          "  reliability: retransmits=%llu fenced=%llu dup_msgs=%llu "
          "corrupt=%llu | chaos: drops=%llu dups=%llu delays=%llu "
          "partitions=%llu\n",
          static_cast<unsigned long long>(
              reg.GetCounter("engine.retransmits")->value()),
          static_cast<unsigned long long>(
              reg.GetCounter("engine.fenced_msgs")->value()),
          static_cast<unsigned long long>(
              reg.GetCounter("engine.duplicate_msgs")->value()),
          static_cast<unsigned long long>(
              reg.GetCounter("engine.corrupt_msgs")->value()),
          static_cast<unsigned long long>(
              reg.GetCounter("chaos.drops")->value()),
          static_cast<unsigned long long>(
              reg.GetCounter("chaos.dups")->value()),
          static_cast<unsigned long long>(
              reg.GetCounter("chaos.delays")->value()),
          static_cast<unsigned long long>(
              reg.GetCounter("chaos.partitions")->value()));
  return out;
}

StatsReporter::StatsReporter(Source source, int period_ms)
    : source_(std::move(source)),
      period_ms_(period_ms),
      sink_([](const char* reason, const std::string& report) {
        std::fprintf(stderr, "[stats-reporter %s]\n%s", reason,
                     report.c_str());
        std::fflush(stderr);
      }) {}

StatsReporter::~StatsReporter() { Stop(); }

void StatsReporter::SetSink(Sink sink) { sink_ = std::move(sink); }

void StatsReporter::Start() {
  thread_ = std::thread(&StatsReporter::Loop, this);
}

void StatsReporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Clean-shutdown flush: a job that completes within the first period
  // would otherwise leave no report at all.
  if (reports_.load() == 0) ReportNow("final");
}

void StatsReporter::ReportNow(const char* reason) {
  std::string report = FormatEngineStats(source_());
  reports_.fetch_add(1);
  sink_(reason, report);
}

uint64_t StatsReporter::reports_emitted() const { return reports_.load(); }

void StatsReporter::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, std::chrono::milliseconds(period_ms_),
                     [&] { return stop_; })) {
      break;
    }
    lock.unlock();
    ReportNow("periodic");
    lock.lock();
  }
}

}  // namespace treeserver
