#ifndef TREESERVER_ENGINE_STATS_REPORTER_H_
#define TREESERVER_ENGINE_STATS_REPORTER_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "engine/cluster.h"

namespace treeserver {

/// Renders an EngineStats snapshot as a multi-line human-readable
/// report (per-worker predicted M_work load vs actual bytes/busy-time,
/// B_plan depth, tasks in flight, channel histograms).
std::string FormatEngineStats(const EngineStats& stats);

/// Periodic engine stats reporter (off by default; enabled via
/// EngineConfig::stats_period_ms). Wakes every period, pulls a snapshot
/// from its source, and writes the formatted report to stderr. The
/// cluster also triggers ReportNow() when a job completes.
class StatsReporter {
 public:
  using Source = std::function<EngineStats()>;

  /// Does not start the thread; call Start().
  StatsReporter(Source source, int period_ms);
  ~StatsReporter();

  StatsReporter(const StatsReporter&) = delete;
  StatsReporter& operator=(const StatsReporter&) = delete;

  void Start();
  /// Idempotent; joins the reporter thread.
  void Stop();

  /// Dumps one report immediately (any thread).
  void ReportNow(const char* reason);

 private:
  void Loop();

  const Source source_;
  const int period_ms_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace treeserver

#endif  // TREESERVER_ENGINE_STATS_REPORTER_H_
