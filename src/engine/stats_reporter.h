#ifndef TREESERVER_ENGINE_STATS_REPORTER_H_
#define TREESERVER_ENGINE_STATS_REPORTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "engine/cluster.h"

namespace treeserver {

/// Renders an EngineStats snapshot as a multi-line human-readable
/// report (per-worker predicted M_work load vs actual bytes/busy-time,
/// B_plan depth, tasks in flight, channel histograms).
std::string FormatEngineStats(const EngineStats& stats);

/// Periodic engine stats reporter (off by default; enabled via
/// EngineConfig::stats_period_ms). Wakes every period, pulls a snapshot
/// from its source, and writes the formatted report to its sink
/// (stderr by default). The cluster also triggers ReportNow() when a
/// job completes, and Stop() emits one final report if none was ever
/// produced — short jobs always leave at least one snapshot behind.
class StatsReporter {
 public:
  using Source = std::function<EngineStats()>;
  /// Receives each formatted report (reason, body). Tests install one
  /// to capture output; the default writes to stderr.
  using Sink = std::function<void(const char* reason, const std::string&)>;

  /// Does not start the thread; call Start().
  StatsReporter(Source source, int period_ms);
  ~StatsReporter();

  StatsReporter(const StatsReporter&) = delete;
  StatsReporter& operator=(const StatsReporter&) = delete;

  /// Replaces the stderr sink. Must be called before Start().
  void SetSink(Sink sink);

  void Start();
  /// Idempotent; joins the reporter thread. Emits a "final" report
  /// first when the reporter never got a chance to report (the job
  /// finished inside the first period).
  void Stop();

  /// Dumps one report immediately (any thread).
  void ReportNow(const char* reason);

  /// Reports emitted so far (periodic + on-demand + final).
  uint64_t reports_emitted() const;

 private:
  void Loop();

  const Source source_;
  const int period_ms_;
  Sink sink_;
  std::atomic<uint64_t> reports_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace treeserver

#endif  // TREESERVER_ENGINE_STATS_REPORTER_H_
