#ifndef TREESERVER_ENGINE_CHECKPOINT_IO_H_
#define TREESERVER_ENGINE_CHECKPOINT_IO_H_

#include <string>

#include "common/status.h"

namespace treeserver {

/// Durable on-disk form of a Master::Checkpoint() snapshot.
///
/// File layout: [u32 magic "TSCK"][u32 version][u64 payload_len]
/// [payload][u32 crc32c(payload)]. Written to `<path>.tmp` and
/// atomically renamed, mirroring the model files, so a crash mid-write
/// can never leave a half-checkpoint where a restart would read it.
/// Load rejects bad magic/version, truncation, length mismatch and
/// CRC failure — a torn or bit-flipped checkpoint must fail loudly
/// rather than restore silently-wrong job state.
constexpr uint32_t kCheckpointMagic = 0x4b435354;  // "TSCK" little-endian
constexpr uint32_t kCheckpointVersion = 1;

Status SaveCheckpoint(const std::string& path, const std::string& snapshot);
Status LoadCheckpoint(const std::string& path, std::string* snapshot);

}  // namespace treeserver

#endif  // TREESERVER_ENGINE_CHECKPOINT_IO_H_
