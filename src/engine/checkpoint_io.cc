#include "engine/checkpoint_io.h"

#include <cstdio>

#include "common/serial.h"
#include "rpc/crc32c.h"

namespace treeserver {

namespace {

Status WriteFileAtomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open " + tmp + " for writing");
  }
  size_t written =
      bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (written != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::IOError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

Status ReadFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path);
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return Status::IOError("cannot stat " + path);
  }
  out->resize(static_cast<size_t>(size));
  size_t read = size == 0 ? 0 : std::fread(out->data(), 1, out->size(), f);
  std::fclose(f);
  if (read != out->size()) {
    return Status::IOError("short read from " + path);
  }
  return Status::OK();
}

}  // namespace

Status SaveCheckpoint(const std::string& path, const std::string& snapshot) {
  BinaryWriter w;
  w.Write(kCheckpointMagic);
  w.Write(kCheckpointVersion);
  w.WriteString(snapshot);  // u64 length + bytes
  w.Write(Crc32c(snapshot.data(), snapshot.size()));
  return WriteFileAtomic(path, w.buffer());
}

Status LoadCheckpoint(const std::string& path, std::string* snapshot) {
  std::string bytes;
  TS_RETURN_IF_ERROR(ReadFile(path, &bytes));
  BinaryReader r(bytes);
  uint32_t magic = 0;
  uint32_t version = 0;
  if (!r.Read(&magic).ok() || !r.Read(&version).ok()) {
    return Status::Corruption(path + ": truncated checkpoint header");
  }
  if (magic != kCheckpointMagic) {
    return Status::Corruption(path + ": not a TreeServer checkpoint file");
  }
  if (version == 0 || version > kCheckpointVersion) {
    return Status::InvalidArgument(
        path + ": unsupported checkpoint version " + std::to_string(version));
  }
  std::string payload;
  if (!r.ReadString(&payload).ok()) {
    return Status::Corruption(path + ": truncated checkpoint payload");
  }
  uint32_t stored_crc = 0;
  if (!r.Read(&stored_crc).ok()) {
    return Status::Corruption(path + ": truncated checkpoint trailer");
  }
  if (!r.AtEnd()) {
    return Status::Corruption(path + ": trailing bytes after checkpoint");
  }
  if (Crc32c(payload.data(), payload.size()) != stored_crc) {
    return Status::Corruption(path + ": checkpoint CRC mismatch");
  }
  *snapshot = std::move(payload);
  return Status::OK();
}

}  // namespace treeserver
