#ifndef TREESERVER_ENGINE_MESSAGES_H_
#define TREESERVER_ENGINE_MESSAGES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/serial.h"
#include "common/status.h"
#include "common/trace.h"
#include "table/column.h"
#include "tree/split.h"

namespace treeserver {

/// Engine wire-protocol message types.
enum class MsgType : uint32_t {
  // Task channel, master -> worker.
  kColumnTaskPlan = 1,
  kSubtreeTaskPlan = 2,
  kBestSplitNotify = 3,   // winner learns it is the delegate
  kTaskDelete = 4,        // drop the task object
  kParentRelease = 5,     // both children done: delegate may free I_x
  kTreeRevoke = 6,        // fault tolerance: drop all tasks of a tree
  kShutdown = 7,
  kRevokeAll = 8,       // master failover: drop every task object
  kAck = 9,             // reliable-delivery ack: [u32 gen][u64 seq]
  // Task channel, worker -> master.
  kColumnTaskResponse = 10,
  kSubtreeResult = 11,
  // Data channel, worker -> worker.
  kIxRequest = 20,
  kIxResponse = 21,
  kColumnDataRequest = 22,
  kColumnDataResponse = 23,
  // Master-internal control (enqueued on the master's own queue).
  kWorkerCrashed = 30,
  // Trace channel (observability; low priority on TCP).
  kTraceRequest = 40,   // master -> worker: snapshot your tracer
  kTraceSnapshot = 41,  // worker -> master: TraceSnapshotMsg
};

/// Which half of the parent's split a task's rows are.
enum class ChildSide : uint8_t {
  kLeft = 0,
  kRight = 1,
};

/// Per-task hyperparameter bundle shipped with plans (workers are
/// stateless with respect to jobs; everything a task needs rides in
/// its plan message).
struct TaskContext {
  uint8_t impurity = 0;       // Impurity enum
  int32_t max_depth = 10;     // d_max (global)
  uint32_t min_leaf = 1;      // τ_leaf
  uint8_t extra_trees = 0;    // completely-random mode
  uint64_t rng_seed = 0;      // per-task randomness (extra-trees)
  uint8_t split_method = 0;   // SplitMethod enum (0 = exact)
  uint16_t max_bins = 255;    // histogram-mode bin budget

  void Serialize(BinaryWriter* w) const;
  static Status Deserialize(BinaryReader* r, TaskContext* out);
};

/// Plan for a column-task (Fig. 3(a)): evaluate `columns` over I_x and
/// report the best split-condition. I_x is NOT included — the worker
/// pulls it from `parent_worker` (Section V).
struct ColumnTaskPlan {
  uint64_t task_id = 0;
  uint32_t tree_id = 0;
  int32_t node_id = 0;
  int32_t depth = 0;
  uint64_t n_rows = 0;
  int32_t parent_worker = -1;  // -1: root task, I_x = all rows
  uint64_t parent_task = 0;
  uint8_t side = 0;  // ChildSide
  std::vector<int32_t> columns;
  TaskContext ctx;

  std::string Encode() const;
  static Status Decode(const std::string& payload, ColumnTaskPlan* out);
};

/// Plan for a subtree-task (Fig. 3(b)): the key worker gathers D_x and
/// builds Δ_x locally. `column_servers[i]` is the worker that serves
/// `columns[i]`, as chosen by the master's load model (Section VI).
struct SubtreeTaskPlan {
  uint64_t task_id = 0;
  uint32_t tree_id = 0;
  int32_t node_id = 0;
  int32_t depth = 0;
  uint64_t n_rows = 0;
  int32_t parent_worker = -1;
  uint64_t parent_task = 0;
  uint8_t side = 0;
  std::vector<int32_t> columns;
  std::vector<int32_t> column_servers;
  TaskContext ctx;

  std::string Encode() const;
  static Status Decode(const std::string& payload, SubtreeTaskPlan* out);
};

/// A worker's answer to a column-task plan: the node statistics (for
/// leaf decisions and node predictions at the master) plus the best
/// split over the worker's assigned columns (possibly invalid).
struct ColumnTaskResponse {
  uint64_t task_id = 0;
  int32_t worker = -1;
  TargetStats node_stats;
  SplitOutcome outcome;

  std::string Encode() const;
  static Status Decode(const std::string& payload, ColumnTaskResponse* out);
};

/// The master's verdict on a column-task, sent to every assigned
/// worker. The delegate (is_delegate) keeps the task object, splits
/// I_x with `condition`, and serves child requests; the others delete
/// their task objects. Sent with an invalid condition when the node
/// became a leaf (everyone deletes).
struct BestSplitNotify {
  uint64_t task_id = 0;
  uint8_t is_delegate = 0;
  SplitCondition condition;

  std::string Encode() const;
  static Status Decode(const std::string& payload, BestSplitNotify* out);
};

/// Completed subtree shipped back to the master.
struct SubtreeResult {
  uint64_t task_id = 0;
  int32_t worker = -1;
  std::string tree_bytes;  // serialized TreeModel

  std::string Encode() const;
  static Status Decode(const std::string& payload, SubtreeResult* out);
};

/// Data-channel request for the row ids of one side of a parent task's
/// split (Fig. 9). `requester_task` keys the response back to the
/// requesting worker's task object.
struct IxRequest {
  uint64_t parent_task = 0;
  uint8_t side = 0;
  uint64_t requester_task = 0;
  int32_t requester_worker = -1;

  std::string Encode() const;
  static Status Decode(const std::string& payload, IxRequest* out);
};

struct IxResponse {
  uint64_t requester_task = 0;
  std::vector<uint32_t> rows;
  /// When true, Encode() delta+varint-compresses the (ascending) row
  /// ids — the compression extension the paper leaves as future work.
  /// Decode() auto-detects from the wire format.
  bool compress = false;

  std::string Encode() const;
  static Status Decode(const std::string& payload, IxResponse* out);
};

/// Key worker -> serving worker: please send me the D_x values of
/// these columns. The serving worker fetches I_x itself from the
/// parent worker (arrow 3 in Fig. 9(a)).
struct ColumnDataRequest {
  uint64_t task_id = 0;
  uint32_t tree_id = 0;
  std::vector<int32_t> columns;
  int32_t key_worker = -1;
  int32_t parent_worker = -1;
  uint64_t parent_task = 0;
  uint8_t side = 0;
  uint64_t n_rows = 0;  // used when parent_worker == -1 (root)

  std::string Encode() const;
  static Status Decode(const std::string& payload, ColumnDataRequest* out);
};

/// Serving worker -> key worker: the gathered column values.
struct ColumnDataResponse {
  uint64_t task_id = 0;
  std::vector<int32_t> columns;
  std::vector<ColumnPtr> data;  // same order as `columns`
  /// Encode-side only: bit-pack categorical payloads.
  bool compress = false;

  std::string Encode() const;
  static Status Decode(const std::string& payload, ColumnDataResponse* out);
};

/// A worker's tracer snapshot, shipped to the master on the trace
/// channel in answer to kTraceRequest (or unsolicited at job end).
struct TraceSnapshotMsg {
  int32_t worker = -1;
  uint64_t dropped = 0;  // spans lost to the per-thread buffer cap
  std::vector<TraceEventCopy> events;

  std::string Encode() const;
  static Status Decode(const std::string& payload, TraceSnapshotMsg* out);
};

/// Simple one-field bodies.
struct TaskIdOnly {
  uint64_t task_id = 0;
  std::string Encode() const;
  static Status Decode(const std::string& payload, TaskIdOnly* out);
};

struct TreeIdOnly {
  uint32_t tree_id = 0;
  std::string Encode() const;
  static Status Decode(const std::string& payload, TreeIdOnly* out);
};

/// Serializes a gathered column (subset of rows) for data transfer.
/// With `compress`, categorical codes are bit-packed to
/// ceil(log2(cardinality+1)) bits (one extra value for "missing");
/// numeric payloads stay raw. Deserialize auto-detects.
void SerializeColumn(const Column& column, BinaryWriter* w,
                     bool compress = false);
Status DeserializeColumn(BinaryReader* r, ColumnPtr* out);

/// Delta+varint encoding of ascending row ids.
void WriteRowIds(BinaryWriter* w, const std::vector<uint32_t>& rows,
                 bool compress);
Status ReadRowIds(BinaryReader* r, std::vector<uint32_t>* rows);

}  // namespace treeserver

#endif  // TREESERVER_ENGINE_MESSAGES_H_
