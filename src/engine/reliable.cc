#include "engine/reliable.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "engine/messages.h"
#include "rpc/crc32c.h"

namespace treeserver {

namespace {

void PutU32(char* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }
void PutU64(char* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }
uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
uint64_t GetU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

bool ReliableLink::IsReliableType(uint32_t type) {
  switch (static_cast<MsgType>(type)) {
    case MsgType::kColumnTaskPlan:
    case MsgType::kSubtreeTaskPlan:
    case MsgType::kBestSplitNotify:
    case MsgType::kTaskDelete:
    case MsgType::kParentRelease:
    case MsgType::kTreeRevoke:
    case MsgType::kColumnTaskResponse:
    case MsgType::kSubtreeResult:
    case MsgType::kIxRequest:
    case MsgType::kIxResponse:
    case MsgType::kColumnDataRequest:
    case MsgType::kColumnDataResponse:
      return true;
    // kShutdown / kRevokeAll are broadcast raw (FailoverMaster sends
    // kRevokeAll straight through the transport), kAck is the ack
    // itself, kWorkerCrashed is a master self-send, traces are
    // best-effort.
    default:
      return false;
  }
}

ReliableLink::ReliableLink(Transport* transport, int local_rank,
                           ReliableOptions opts)
    : transport_(transport),
      local_rank_(local_rank),
      opts_(opts),
      retransmits_(MetricsRegistry::Global().GetCounter("engine.retransmits")),
      dups_(MetricsRegistry::Global().GetCounter("engine.duplicate_msgs")),
      fenced_(MetricsRegistry::Global().GetCounter("engine.fenced_msgs")),
      corrupt_(MetricsRegistry::Global().GetCounter("engine.corrupt_msgs")),
      giveups_(
          MetricsRegistry::Global().GetCounter("engine.retransmit_giveups")) {}

ReliableLink::~ReliableLink() { Stop(); }

void ReliableLink::SetGeneration(uint32_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  opts_.generation = generation;
}

void ReliableLink::Start() {
  retransmit_ = std::thread(&ReliableLink::RetransmitLoop, this);
}

void ReliableLink::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  cv_.notify_all();
  if (retransmit_.joinable()) retransmit_.join();
}

size_t ReliableLink::PendingCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

void ReliableLink::DropPeer(int rank) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->first.first == rank) {
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

bool ReliableLink::Send(ChannelKind channel, Message msg) {
  if (!IsReliableType(msg.type) || msg.src == msg.dst) {
    return transport_->Send(channel, std::move(msg));
  }
  uint32_t gen;
  uint64_t seq;
  {
    std::lock_guard<std::mutex> lock(mu_);
    gen = opts_.generation;
    seq = ++next_seq_[msg.dst];
  }
  char prefix[kPrefixBytes];
  PutU32(prefix, gen);
  PutU64(prefix + 4, seq);
  uint32_t crc = Crc32c(prefix, 12);
  crc = Crc32cExtend(crc, msg.payload.data(), msg.payload.size());
  PutU32(prefix + 12, crc);
  msg.payload.insert(0, prefix, kPrefixBytes);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopped_ && !transport_->IsCrashed(msg.dst)) {
      Pending p;
      p.channel = channel;
      p.msg = msg;  // keep the wrapped form for verbatim resend
      p.backoff_ms = opts_.ack_timeout_ms;
      p.due = std::chrono::steady_clock::now() +
              std::chrono::milliseconds(p.backoff_ms);
      pending_.emplace(std::make_pair(msg.dst, seq), std::move(p));
    }
  }
  cv_.notify_all();
  return transport_->Send(channel, std::move(msg));
}

bool ReliableLink::OnReceive(Message* msg, ChannelKind channel) {
  if (msg->type == static_cast<uint32_t>(MsgType::kAck)) {
    if (msg->payload.size() != 12) {
      corrupt_->Inc();
      return false;
    }
    const uint32_t gen = GetU32(msg->payload.data());
    const uint64_t seq = GetU64(msg->payload.data() + 4);
    std::lock_guard<std::mutex> lock(mu_);
    // Only an ack from our own epoch clears pending state — a stale
    // ack for the previous master's seq N must not release this
    // epoch's seq N.
    if (gen == opts_.generation) {
      pending_.erase(std::make_pair(msg->src, seq));
    }
    return false;
  }
  if (!IsReliableType(msg->type) || msg->src == msg->dst) return true;

  if (msg->payload.size() < kPrefixBytes) {
    corrupt_->Inc();
    TS_LOG(kWarn) << "reliable: short frame from rank " << msg->src
                  << " type " << msg->type << " (" << msg->payload.size()
                  << " bytes)";
    return false;
  }
  const char* p = msg->payload.data();
  const uint32_t gen = GetU32(p);
  const uint64_t seq = GetU64(p + 4);
  const uint32_t want_crc = GetU32(p + 12);
  uint32_t crc = Crc32c(p, 12);
  crc = Crc32cExtend(crc, p + kPrefixBytes,
                     msg->payload.size() - kPrefixBytes);
  if (crc != want_crc) {
    // No ack: the sender's retransmit delivers an intact copy.
    corrupt_->Inc();
    TS_LOG(kWarn) << "reliable: CRC mismatch from rank " << msg->src
                  << " type " << msg->type << " seq " << seq;
    return false;
  }

  bool deliver = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SrcState& st = src_state_[msg->src];
    if (gen < st.gen) {
      // Zombie from a prior epoch: count, drop, and do NOT ack — that
      // sender is gone and must never see progress.
      fenced_->Inc();
      TS_LOG(kWarn) << "reliable: fenced stale-generation msg from rank "
                    << msg->src << " (gen " << gen << " < " << st.gen
                    << ") type " << msg->type;
      return false;
    }
    if (gen > st.gen) {
      // The peer restarted into a new epoch: fresh sequence space.
      st = SrcState{};
      st.gen = gen;
    }
    const bool dup = seq <= st.floor || st.above.count(seq) > 0;
    if (dup) {
      dups_->Inc();
    } else {
      st.above.insert(seq);
      while (st.above.count(st.floor + 1) > 0) {
        st.above.erase(st.floor + 1);
        ++st.floor;
      }
      deliver = true;
    }
  }
  // Ack both fresh deliveries and duplicates (the dup means our
  // earlier ack was lost), outside the lock: Send may block on
  // transport backpressure.
  Message ack;
  ack.src = local_rank_;
  ack.dst = msg->src;
  ack.type = static_cast<uint32_t>(MsgType::kAck);
  ack.trace_id = msg->trace_id;
  ack.payload.resize(12);
  PutU32(ack.payload.data(), gen);
  PutU64(ack.payload.data() + 4, seq);
  transport_->Send(channel, std::move(ack));
  if (!deliver) {
    TS_LOG(kDebug) << "reliable: dropped duplicate from rank " << msg->src
                   << " type " << msg->type << " seq " << seq;
    return false;
  }
  msg->payload.erase(0, kPrefixBytes);
  return true;
}

void ReliableLink::RetransmitLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopped_) {
    if (pending_.empty()) {
      cv_.wait(lock, [&] { return stopped_ || !pending_.empty(); });
      continue;
    }
    auto next = std::chrono::steady_clock::time_point::max();
    for (const auto& [key, p] : pending_) {
      if (p.due < next) next = p.due;
    }
    const auto now = std::chrono::steady_clock::now();
    if (next > now) {
      cv_.wait_until(lock, next, [&] { return stopped_; });
      continue;
    }
    // Collect due copies under the lock, resend after releasing it
    // (the transport may block on backpressure).
    std::vector<std::pair<ChannelKind, Message>> out;
    for (auto it = pending_.begin(); it != pending_.end();) {
      Pending& p = it->second;
      if (p.due > now) {
        ++it;
        continue;
      }
      const int dst = it->first.first;
      if (transport_->IsCrashed(dst) || p.retries >= opts_.max_retransmits) {
        if (!transport_->IsCrashed(dst)) {
          giveups_->Inc();
          TS_LOG(kWarn) << "reliable: giving up on msg to rank " << dst
                        << " type " << p.msg.type << " after " << p.retries
                        << " retransmits";
        }
        it = pending_.erase(it);
        continue;
      }
      ++p.retries;
      retransmits_->Inc();
      p.backoff_ms = std::min(p.backoff_ms * 2, opts_.ack_backoff_max_ms);
      p.due = now + std::chrono::milliseconds(p.backoff_ms);
      out.emplace_back(p.channel, p.msg);
      ++it;
    }
    lock.unlock();
    for (auto& [ch, m] : out) {
      transport_->Send(ch, std::move(m));
    }
    lock.lock();
  }
}

}  // namespace treeserver
