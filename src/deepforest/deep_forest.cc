#include "deepforest/deep_forest.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>

#include "common/logging.h"
#include "common/timer.h"

namespace treeserver {

namespace {

int PositionsPerAxis(int extent, int window, int stride) {
  return (extent - window) / stride + 1;
}

}  // namespace

DataTable BuildFeatureTable(const std::vector<std::vector<float>>& features,
                            const std::vector<int32_t>& labels,
                            int num_classes) {
  TS_CHECK(!features.empty());
  const size_t n = features.size();
  const size_t dims = features[0].size();
  std::vector<ColumnMeta> metas;
  std::vector<ColumnPtr> cols;
  metas.reserve(dims + 1);
  cols.reserve(dims + 1);
  for (size_t d = 0; d < dims; ++d) {
    std::vector<double> values(n);
    for (size_t i = 0; i < n; ++i) values[i] = features[i][d];
    std::string name = "f" + std::to_string(d);
    cols.push_back(Column::Numeric(name, std::move(values)));
    metas.push_back(ColumnMeta{name, DataType::kNumeric, 0});
  }
  cols.push_back(Column::Categorical("Y", labels, num_classes));
  metas.push_back(ColumnMeta{"Y", DataType::kCategorical, num_classes});
  int target = static_cast<int>(cols.size()) - 1;
  auto table = DataTable::Make(
      Schema(std::move(metas), target, TaskKind::kClassification),
      std::move(cols));
  TS_CHECK(table.ok()) << table.status().ToString();
  return std::move(table).value();
}

std::vector<std::vector<float>> ConcatPerImageFeatures(
    const std::vector<std::vector<float>>& a,
    const std::vector<std::vector<float>>& b) {
  TS_CHECK(a.size() == b.size());
  std::vector<std::vector<float>> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    out[i].reserve(a[i].size() + b[i].size());
    out[i].insert(out[i].end(), a[i].begin(), a[i].end());
    out[i].insert(out[i].end(), b[i].begin(), b[i].end());
  }
  return out;
}

namespace {

void ParallelFor(size_t n, int num_threads,
                 const std::function<void(size_t)>& fn) {
  if (num_threads <= 1 || n < 2) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  std::vector<std::thread> pool;
  int workers = std::min<size_t>(num_threads, n);
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(i);
      }
    });
  }
  for (std::thread& th : pool) th.join();
}

/// Per-image averaged PMFs of each forest over a plain feature table
/// (cascade layers: one row per image).
std::vector<std::vector<float>> ExtractLayerFeatures(
    const std::vector<ForestModel>& forests, const DataTable& table,
    int num_threads) {
  const size_t n = table.num_rows();
  std::vector<std::vector<float>> out(n);
  ParallelFor(n, num_threads, [&](size_t i) {
    for (const ForestModel& forest : forests) {
      std::vector<float> pmf = forest.PredictPmf(table, i);
      out[i].insert(out[i].end(), pmf.begin(), pmf.end());
    }
  });
  return out;
}

}  // namespace

std::vector<int32_t> ArgmaxAveragedLabels(
    const std::vector<std::vector<float>>& layer_features, int num_classes,
    int forests) {
  std::vector<int32_t> labels(layer_features.size());
  for (size_t i = 0; i < layer_features.size(); ++i) {
    // Average the per-forest PMFs, then argmax.
    std::vector<float> avg(num_classes, 0.0f);
    for (int f = 0; f < forests; ++f) {
      for (int c = 0; c < num_classes; ++c) {
        avg[c] += layer_features[i][f * num_classes + c];
      }
    }
    labels[i] = static_cast<int32_t>(
        std::max_element(avg.begin(), avg.end()) - avg.begin());
  }
  return labels;
}

namespace {

double Accuracy(const std::vector<int32_t>& pred,
                const std::vector<int32_t>& truth) {
  if (pred.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == truth[i]) ++correct;
  }
  return static_cast<double>(correct) / pred.size();
}

}  // namespace

DataTable BuildWindowTable(const ImageDataset& images, int window, int stride,
                           int num_threads) {
  const int px = PositionsPerAxis(images.width, window, stride);
  const int py = PositionsPerAxis(images.height, window, stride);
  const size_t positions = static_cast<size_t>(px) * py;
  const size_t dims = static_cast<size_t>(window) * window;
  const size_t rows = images.size() * positions;

  std::vector<std::vector<double>> feature_values(dims,
                                                  std::vector<double>(rows));
  std::vector<int32_t> labels(rows);

  ParallelFor(images.size(), num_threads, [&](size_t img) {
    const std::vector<float>& pixels = images.images[img];
    size_t row = img * positions;
    for (int wy = 0; wy < py; ++wy) {
      for (int wx = 0; wx < px; ++wx, ++row) {
        size_t d = 0;
        for (int dy = 0; dy < window; ++dy) {
          for (int dx = 0; dx < window; ++dx, ++d) {
            feature_values[d][row] =
                pixels[(wy * stride + dy) * images.width + wx * stride + dx];
          }
        }
        labels[row] = images.labels[img];
      }
    }
  });

  std::vector<ColumnMeta> metas;
  std::vector<ColumnPtr> cols;
  for (size_t d = 0; d < dims; ++d) {
    std::string name = "p" + std::to_string(d);
    cols.push_back(Column::Numeric(name, std::move(feature_values[d])));
    metas.push_back(ColumnMeta{name, DataType::kNumeric, 0});
  }
  cols.push_back(Column::Categorical("Y", labels, images.num_classes));
  metas.push_back(
      ColumnMeta{"Y", DataType::kCategorical, images.num_classes});
  int target = static_cast<int>(cols.size()) - 1;
  auto table = DataTable::Make(
      Schema(std::move(metas), target, TaskKind::kClassification),
      std::move(cols));
  TS_CHECK(table.ok()) << table.status().ToString();
  return std::move(table).value();
}

std::vector<std::vector<float>> ExtractWindowFeatures(
    const std::vector<ForestModel>& forests, const DataTable& window_table,
    size_t num_images, int num_threads) {
  TS_CHECK(num_images > 0);
  const size_t positions = window_table.num_rows() / num_images;
  const int classes = window_table.schema().num_classes();
  std::vector<std::vector<float>> out(num_images);
  ParallelFor(num_images, num_threads, [&](size_t img) {
    std::vector<float>& feat = out[img];
    feat.reserve(positions * forests.size() * classes);
    for (size_t p = 0; p < positions; ++p) {
      size_t row = img * positions + p;
      for (const ForestModel& forest : forests) {
        std::vector<float> pmf = forest.PredictPmf(window_table, row);
        feat.insert(feat.end(), pmf.begin(), pmf.end());
      }
    }
  });
  return out;
}

ForestModel DeepForestTrainer::TrainForestJob(const DataTable& table,
                                              int trees, int max_depth,
                                              bool extra_trees,
                                              uint64_t seed) {
  TreeServerCluster cluster(table, engine_);
  ForestJobSpec spec;
  spec.num_trees = trees;
  spec.tree.max_depth = max_depth;
  spec.tree.extra_trees = extra_trees;
  spec.sqrt_columns = true;  // random-forest column sampling
  spec.seed = seed;
  return cluster.TrainForest(spec);
}

DeepForestModel DeepForestTrainer::Train(const ImageDataset& train,
                                         const ImageDataset& test,
                                         std::vector<DeepForestStep>* steps) {
  DeepForestModel model;
  model.config_ = config_;
  model.num_classes_ = train.num_classes;
  model.width_ = train.width;
  model.height_ = train.height;

  auto log_step = [&](DeepForestStep step) {
    if (steps != nullptr) steps->push_back(std::move(step));
  };

  // ---- "slide": window extraction for all window sizes (row-parallel).
  const MgsConfig& mgs = config_.mgs;
  std::vector<DataTable> train_windows;
  std::vector<DataTable> test_windows;
  {
    WallTimer train_timer;
    for (int w : mgs.window_sizes) {
      train_windows.push_back(
          BuildWindowTable(train, w, mgs.stride, config_.extract_threads));
    }
    double train_s = train_timer.Seconds();
    WallTimer test_timer;
    for (int w : mgs.window_sizes) {
      test_windows.push_back(
          BuildWindowTable(test, w, mgs.stride, config_.extract_threads));
    }
    log_step(DeepForestStep{"slide", train_s, test_timer.Seconds(), -1.0});
  }

  // ---- MGS: train forests per window, then re-represent both sets.
  std::vector<std::vector<std::vector<float>>> train_rep;  // [window][img]
  std::vector<std::vector<std::vector<float>>> test_rep;
  for (size_t wi = 0; wi < mgs.window_sizes.size(); ++wi) {
    std::string wname = "win" + std::to_string(mgs.window_sizes[wi]);
    WallTimer train_timer;
    std::vector<ForestModel> forests;
    for (int f = 0; f < mgs.forests_per_window; ++f) {
      bool extra = mgs.second_forest_extra_trees && (f % 2 == 1);
      forests.push_back(TrainForestJob(
          train_windows[wi], mgs.trees_per_forest, mgs.max_depth, extra,
          config_.seed * 1000 + wi * 10 + f));
    }
    log_step(DeepForestStep{wname + "train", train_timer.Seconds(), 0, -1.0});

    WallTimer extract_timer;
    train_rep.push_back(ExtractWindowFeatures(
        forests, train_windows[wi], train.size(), config_.extract_threads));
    double extract_train_s = extract_timer.Seconds();
    WallTimer test_extract_timer;
    test_rep.push_back(ExtractWindowFeatures(
        forests, test_windows[wi], test.size(), config_.extract_threads));
    log_step(DeepForestStep{wname + "extract", extract_train_s,
                            test_extract_timer.Seconds(), -1.0});
    model.mgs_.push_back(std::move(forests));
  }
  train_windows.clear();
  test_windows.clear();

  // ---- Cascade forest: layer l consumes the MGS representation of
  // window (l mod #windows), concatenated with the previous layer's
  // output features.
  const CascadeConfig& cf = config_.cascade;
  std::vector<std::vector<float>> prev_train;  // previous layer outputs
  std::vector<std::vector<float>> prev_test;
  for (int layer = 0; layer < cf.num_layers; ++layer) {
    size_t wi = layer % mgs.window_sizes.size();
    std::vector<std::vector<float>> train_in =
        layer == 0 ? train_rep[wi]
                   : ConcatPerImageFeatures(prev_train, train_rep[wi]);
    std::vector<std::vector<float>> test_in =
        layer == 0 ? test_rep[wi]
                   : ConcatPerImageFeatures(prev_test, test_rep[wi]);
    DataTable train_table =
        BuildFeatureTable(train_in, train.labels, train.num_classes);
    DataTable test_table =
        BuildFeatureTable(test_in, test.labels, test.num_classes);

    std::string lname = "CF" + std::to_string(layer);
    WallTimer train_timer;
    std::vector<ForestModel> forests;
    for (int f = 0; f < cf.forests_per_layer; ++f) {
      bool extra = cf.use_extra_trees && (f % 2 == 1);
      forests.push_back(TrainForestJob(train_table, cf.trees_per_forest,
                                       cf.max_depth, extra,
                                       config_.seed * 7777 + layer * 10 + f));
    }
    log_step(DeepForestStep{lname + "train", train_timer.Seconds(), 0, -1.0});

    WallTimer extract_timer;
    prev_train =
        ExtractLayerFeatures(forests, train_table, config_.extract_threads);
    double extract_train_s = extract_timer.Seconds();
    WallTimer test_timer;
    prev_test =
        ExtractLayerFeatures(forests, test_table, config_.extract_threads);
    std::vector<int32_t> pred =
        ArgmaxAveragedLabels(prev_test, test.num_classes, cf.forests_per_layer);
    log_step(DeepForestStep{lname + "extract", extract_train_s,
                            test_timer.Seconds(),
                            Accuracy(pred, test.labels)});
    model.cascade_.push_back(std::move(forests));
  }
  return model;
}

namespace {

void SerializeForestGroups(const std::vector<std::vector<ForestModel>>& groups,
                           BinaryWriter* w) {
  w->Write(static_cast<uint32_t>(groups.size()));
  for (const auto& group : groups) {
    w->Write(static_cast<uint32_t>(group.size()));
    for (const ForestModel& forest : group) forest.Serialize(w);
  }
}

Status DeserializeForestGroups(BinaryReader* r,
                               std::vector<std::vector<ForestModel>>* out) {
  uint32_t groups;
  TS_RETURN_IF_ERROR(r->Read(&groups));
  if (groups > 4096) return Status::Corruption("implausible group count");
  out->assign(groups, {});
  for (uint32_t g = 0; g < groups; ++g) {
    uint32_t forests;
    TS_RETURN_IF_ERROR(r->Read(&forests));
    if (forests > 65536) return Status::Corruption("implausible forest count");
    (*out)[g].resize(forests);
    for (uint32_t f = 0; f < forests; ++f) {
      TS_RETURN_IF_ERROR(ForestModel::Deserialize(r, &(*out)[g][f]));
    }
  }
  return Status::OK();
}

}  // namespace

void DeepForestModel::Serialize(BinaryWriter* w) const {
  // Config fields that affect prediction.
  w->Write(static_cast<uint32_t>(config_.mgs.window_sizes.size()));
  for (int ws : config_.mgs.window_sizes) w->Write(ws);
  w->Write(config_.mgs.stride);
  w->Write(config_.cascade.forests_per_layer);
  w->Write(num_classes_);
  w->Write(width_);
  w->Write(height_);
  SerializeForestGroups(mgs_, w);
  SerializeForestGroups(cascade_, w);
}

Status DeepForestModel::Deserialize(BinaryReader* r, DeepForestModel* out) {
  uint32_t windows;
  TS_RETURN_IF_ERROR(r->Read(&windows));
  if (windows > 256) return Status::Corruption("implausible window count");
  out->config_.mgs.window_sizes.assign(windows, 0);
  for (uint32_t i = 0; i < windows; ++i) {
    TS_RETURN_IF_ERROR(r->Read(&out->config_.mgs.window_sizes[i]));
  }
  TS_RETURN_IF_ERROR(r->Read(&out->config_.mgs.stride));
  TS_RETURN_IF_ERROR(r->Read(&out->config_.cascade.forests_per_layer));
  TS_RETURN_IF_ERROR(r->Read(&out->num_classes_));
  TS_RETURN_IF_ERROR(r->Read(&out->width_));
  TS_RETURN_IF_ERROR(r->Read(&out->height_));
  TS_RETURN_IF_ERROR(DeserializeForestGroups(r, &out->mgs_));
  TS_RETURN_IF_ERROR(DeserializeForestGroups(r, &out->cascade_));
  return Status::OK();
}

std::vector<int32_t> DeepForestModel::Predict(const ImageDataset& images,
                                              int num_threads) const {
  const MgsConfig& mgs = config_.mgs;
  // MGS re-representation of the input batch.
  std::vector<std::vector<std::vector<float>>> rep;
  for (size_t wi = 0; wi < mgs.window_sizes.size(); ++wi) {
    DataTable window_table = BuildWindowTable(
        images, mgs.window_sizes[wi], mgs.stride, num_threads);
    rep.push_back(ExtractWindowFeatures(mgs_[wi], window_table,
                                        images.size(), num_threads));
  }
  // Cascade.
  std::vector<std::vector<float>> prev;
  for (size_t layer = 0; layer < cascade_.size(); ++layer) {
    size_t wi = layer % mgs.window_sizes.size();
    std::vector<std::vector<float>> in =
        layer == 0 ? rep[wi] : ConcatPerImageFeatures(prev, rep[wi]);
    DataTable table = BuildFeatureTable(
        in, std::vector<int32_t>(images.size(), 0), num_classes_);
    prev = ExtractLayerFeatures(cascade_[layer], table, num_threads);
  }
  return ArgmaxAveragedLabels(prev, num_classes_,
                      config_.cascade.forests_per_layer);
}

double DeepForestModel::EvaluateAccuracy(const ImageDataset& images,
                                         int num_threads) const {
  std::vector<int32_t> pred = Predict(images, num_threads);
  size_t correct = 0;
  for (size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == images.labels[i]) ++correct;
  }
  return images.size() == 0
             ? 0.0
             : static_cast<double>(correct) / images.size();
}

}  // namespace treeserver
