#ifndef TREESERVER_DEEPFOREST_DEEP_FOREST_H_
#define TREESERVER_DEEPFOREST_DEEP_FOREST_H_

#include <string>
#include <vector>

#include "engine/cluster.h"
#include "forest/forest.h"
#include "table/datasets.h"

namespace treeserver {

/// Multi-grained scanning stage parameters (Section VII).
struct MgsConfig {
  std::vector<int> window_sizes = {3, 5, 7};
  /// Window stride. The paper slides with stride 1 on full MNIST; the
  /// default here is 2 to keep the re-representation laptop-sized (the
  /// code path is identical).
  int stride = 2;
  int forests_per_window = 2;
  int trees_per_forest = 20;
  /// The paper found d_max = 10 in MGS beats 100.
  int max_depth = 10;
  /// Second forest per window uses completely-random trees
  /// (the standard deep-forest recipe).
  bool second_forest_extra_trees = true;
};

/// Cascade forest stage parameters.
struct CascadeConfig {
  int num_layers = 6;  // CF0 .. CF5
  int forests_per_layer = 2;
  int trees_per_forest = 20;
  /// The paper sets d_max = ∞ in the cascade.
  int max_depth = 64;
  /// The paper's modification (1): extra-trees hurt in the cascade, so
  /// only random forests are used.
  bool use_extra_trees = false;
};

struct DeepForestConfig {
  MgsConfig mgs;
  CascadeConfig cascade;
  uint64_t seed = 1;
  /// Threads for the row-parallel jobs (window sliding + feature
  /// extraction), which partition data by rows (Section VII).
  int extract_threads = 4;
};

/// Wall-clock + accuracy log of one pipeline step, mirroring the rows
/// of Table VII ("slide", "win3train", "win3extract", "CF0train",
/// "CF0extract", ...).
struct DeepForestStep {
  std::string name;
  double train_seconds = 0.0;
  double test_seconds = 0.0;   // portion spent on the test set
  double test_accuracy = -1.0;  // -1: not an accuracy-reporting step
};

/// A trained deep forest: MGS forests per window plus cascade layers.
class DeepForestModel {
 public:
  /// Predicted labels for a batch of images.
  std::vector<int32_t> Predict(const ImageDataset& images,
                               int num_threads = 4) const;
  double EvaluateAccuracy(const ImageDataset& images,
                          int num_threads = 4) const;

  int num_layers() const { return static_cast<int>(cascade_.size()); }

  /// Read access for the serving layer (serve/compiled_model.h), which
  /// flattens the pipeline into compiled forests.
  const MgsConfig& mgs_config() const { return config_.mgs; }
  const CascadeConfig& cascade_config() const { return config_.cascade; }
  int num_classes() const { return num_classes_; }
  int width() const { return width_; }
  int height() const { return height_; }
  const std::vector<std::vector<ForestModel>>& mgs_forests() const {
    return mgs_;
  }
  const std::vector<std::vector<ForestModel>>& cascade_layers() const {
    return cascade_;
  }

  /// Persists the full pipeline (config, MGS forests, cascade layers);
  /// a restored model predicts identically.
  void Serialize(BinaryWriter* w) const;
  static Status Deserialize(BinaryReader* r, DeepForestModel* out);

 private:
  friend class DeepForestTrainer;

  DeepForestConfig config_;
  int num_classes_ = 10;
  int width_ = 28;
  int height_ = 28;
  /// mgs_[w] holds the forests of window_sizes[w].
  std::vector<std::vector<ForestModel>> mgs_;
  /// cascade_[l] holds the forests of layer l.
  std::vector<std::vector<ForestModel>> cascade_;
};

/// Trains the full pipeline, exercising the TreeServer engine for every
/// forest-training job (one simulated cluster per job, as each job's
/// input table is a different re-representation). Appends one
/// DeepForestStep per pipeline stage to `steps`; accuracy is reported
/// after every cascade layer, like Table VII.
class DeepForestTrainer {
 public:
  DeepForestTrainer(DeepForestConfig config, EngineConfig engine)
      : config_(std::move(config)), engine_(engine) {}

  DeepForestModel Train(const ImageDataset& train, const ImageDataset& test,
                        std::vector<DeepForestStep>* steps = nullptr);

 private:
  ForestModel TrainForestJob(const DataTable& table, int trees, int max_depth,
                             bool extra_trees, uint64_t seed);

  DeepForestConfig config_;
  EngineConfig engine_;
};

/// Row-parallel window sliding: one table row per (image, position),
/// with window*window numeric pixel features plus the image label.
/// Exposed for tests and the feature-extraction path.
DataTable BuildWindowTable(const ImageDataset& images, int window, int stride,
                           int num_threads);

/// Re-representation: for each image, the concatenation over window
/// positions and forests of the k-class PMF vectors (Fig. 12).
std::vector<std::vector<float>> ExtractWindowFeatures(
    const std::vector<ForestModel>& forests, const DataTable& window_table,
    size_t num_images, int num_threads);

/// Builds a numeric-feature classification table from per-image
/// feature vectors (cascade-layer input). Shared with the serving
/// layer so compiled and row-at-a-time cascades see identical tables.
DataTable BuildFeatureTable(const std::vector<std::vector<float>>& features,
                            const std::vector<int32_t>& labels,
                            int num_classes);

/// Concatenates per-image feature blocks: out[i] = a[i] ++ b[i].
std::vector<std::vector<float>> ConcatPerImageFeatures(
    const std::vector<std::vector<float>>& a,
    const std::vector<std::vector<float>>& b);

/// Averages the per-forest PMF blocks of each image's feature vector
/// and returns the argmax label (the cascade's final readout).
std::vector<int32_t> ArgmaxAveragedLabels(
    const std::vector<std::vector<float>>& layer_features, int num_classes,
    int forests);

}  // namespace treeserver

#endif  // TREESERVER_DEEPFOREST_DEEP_FOREST_H_
