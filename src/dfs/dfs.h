#ifndef TREESERVER_DFS_DFS_H_
#define TREESERVER_DFS_DFS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "table/data_table.h"

namespace treeserver {

/// Layout parameters of the column-group × row-group file organization
/// (Fig. 13): each file stores `columns_per_group` consecutive columns
/// for `rows_per_group` consecutive rows, so that TreeServer jobs read
/// files down a column stripe while row-parallel jobs (deep-forest
/// feature extraction) read files across a row stripe — in both cases
/// few, large files that amortize the connection cost.
struct DfsLayout {
  int columns_per_group = 50;
  size_t rows_per_group = 250000;
};

/// Local-filesystem stand-in for HDFS.
///
/// Mirrors the behaviours the paper depends on: (1) a dedicated "put"
/// program streams a table into per-column-group/row-group binary
/// files, (2) readers pay a simulated per-open connection cost, which
/// is what makes many tiny files slow (the motivation for column
/// grouping), and (3) whole column stripes or row stripes can be read
/// independently.
class LocalDfs {
 public:
  /// `root` is a directory; it is created if missing.
  /// `connect_cost_us` is the simulated per-file-open latency.
  explicit LocalDfs(std::string root, int64_t connect_cost_us = 0);

  /// The dedicated "put" program (Section VII): streams the table into
  /// the grouped layout under `<root>/<dataset>/`. Overwrites any
  /// previous dataset of the same name. Memory-efficient in spirit:
  /// data is written one row-group at a time.
  Status Put(const DataTable& table, const std::string& dataset,
             const DfsLayout& layout);

  /// Reads the dataset's schema + layout manifest.
  Result<Schema> ReadSchema(const std::string& dataset) const;

  /// Loads entire columns (a worker loading its assigned column
  /// groups). Returns columns in the order requested.
  Result<std::vector<ColumnPtr>> ReadColumns(
      const std::string& dataset, const std::vector<int>& columns) const;

  /// Loads a contiguous row range across all columns (a row-parallel
  /// job loading its partition).
  Result<DataTable> ReadRows(const std::string& dataset, size_t begin_row,
                             size_t end_row) const;

  /// Loads the full table.
  Result<DataTable> ReadTable(const std::string& dataset) const;

  /// Number of file opens performed so far (tests assert the grouping
  /// actually reduces this).
  uint64_t file_opens() const { return opens_.value(); }
  void ResetCounters() { opens_.Reset(); }

 private:
  struct Manifest {
    Schema schema;
    DfsLayout layout;
    size_t num_rows = 0;
  };

  Result<Manifest> ReadManifest(const std::string& dataset) const;
  std::string DatasetDir(const std::string& dataset) const;
  std::string GroupFile(const std::string& dataset, int col_group,
                        size_t row_group) const;
  /// Counts + simulates the connection latency of one file open.
  void ChargeOpen() const;

  std::string root_;
  int64_t connect_cost_us_;
  mutable Counter opens_;
};

}  // namespace treeserver

#endif  // TREESERVER_DFS_DFS_H_
