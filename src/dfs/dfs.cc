#include "dfs/dfs.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <thread>

#include "common/serial.h"

namespace treeserver {

namespace fs = std::filesystem;

namespace {

constexpr char kManifestFile[] = "_manifest.bin";

void WriteSchema(const Schema& schema, BinaryWriter* w) {
  w->Write<int32_t>(schema.num_columns());
  for (int i = 0; i < schema.num_columns(); ++i) {
    const ColumnMeta& m = schema.column(i);
    w->WriteString(m.name);
    w->Write(static_cast<uint8_t>(m.type));
    w->Write(m.cardinality);
  }
  w->Write<int32_t>(schema.target_index());
  w->Write(static_cast<uint8_t>(schema.task_kind()));
}

Status ReadSchemaBody(BinaryReader* r, Schema* out) {
  int32_t cols;
  TS_RETURN_IF_ERROR(r->Read(&cols));
  std::vector<ColumnMeta> metas(cols);
  for (int32_t i = 0; i < cols; ++i) {
    TS_RETURN_IF_ERROR(r->ReadString(&metas[i].name));
    uint8_t type;
    TS_RETURN_IF_ERROR(r->Read(&type));
    metas[i].type = static_cast<DataType>(type);
    TS_RETURN_IF_ERROR(r->Read(&metas[i].cardinality));
  }
  int32_t target;
  TS_RETURN_IF_ERROR(r->Read(&target));
  uint8_t kind;
  TS_RETURN_IF_ERROR(r->Read(&kind));
  *out = Schema(std::move(metas), target, static_cast<TaskKind>(kind));
  return Status::OK();
}

Status WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot write " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status::IOError("short write to " + path);
  return Status::OK();
}

Status ReadFileBytes(const std::string& path, std::string* bytes) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IOError("cannot open " + path);
  std::streamsize size = in.tellg();
  in.seekg(0);
  bytes->resize(static_cast<size_t>(size));
  in.read(bytes->data(), size);
  if (!in) return Status::IOError("short read from " + path);
  return Status::OK();
}

}  // namespace

LocalDfs::LocalDfs(std::string root, int64_t connect_cost_us)
    : root_(std::move(root)), connect_cost_us_(connect_cost_us) {
  std::error_code ec;
  fs::create_directories(root_, ec);
}

std::string LocalDfs::DatasetDir(const std::string& dataset) const {
  return root_ + "/" + dataset;
}

std::string LocalDfs::GroupFile(const std::string& dataset, int col_group,
                                size_t row_group) const {
  return DatasetDir(dataset) + "/cg" + std::to_string(col_group) + "_rg" +
         std::to_string(row_group) + ".bin";
}

void LocalDfs::ChargeOpen() const {
  opens_.Inc();
  if (connect_cost_us_ > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(connect_cost_us_));
  }
}

Status LocalDfs::Put(const DataTable& table, const std::string& dataset,
                     const DfsLayout& layout) {
  if (layout.columns_per_group <= 0 || layout.rows_per_group == 0) {
    return Status::InvalidArgument("invalid DFS layout");
  }
  std::error_code ec;
  fs::remove_all(DatasetDir(dataset), ec);
  fs::create_directories(DatasetDir(dataset), ec);
  if (ec) return Status::IOError("cannot create " + DatasetDir(dataset));

  const int m = table.num_columns();
  const size_t n = table.num_rows();
  const int col_groups =
      (m + layout.columns_per_group - 1) / layout.columns_per_group;
  const size_t row_groups =
      (n + layout.rows_per_group - 1) / layout.rows_per_group;

  for (int cg = 0; cg < col_groups; ++cg) {
    const int col_begin = cg * layout.columns_per_group;
    const int col_end = std::min(m, col_begin + layout.columns_per_group);
    for (size_t rg = 0; rg < row_groups; ++rg) {
      const size_t row_begin = rg * layout.rows_per_group;
      const size_t row_end =
          std::min(n, row_begin + layout.rows_per_group);
      BinaryWriter w;
      for (int c = col_begin; c < col_end; ++c) {
        const ColumnPtr& col = table.column(c);
        if (col->type() == DataType::kNumeric) {
          std::vector<double> chunk(
              col->numeric_values().begin() + row_begin,
              col->numeric_values().begin() + row_end);
          w.WriteVector(chunk);
        } else {
          std::vector<int32_t> chunk(
              col->categorical_codes().begin() + row_begin,
              col->categorical_codes().begin() + row_end);
          w.WriteVector(chunk);
        }
      }
      ChargeOpen();
      TS_RETURN_IF_ERROR(WriteFileBytes(GroupFile(dataset, cg, rg),
                                        w.buffer()));
    }
  }

  BinaryWriter w;
  WriteSchema(table.schema(), &w);
  w.Write<int32_t>(layout.columns_per_group);
  w.Write<uint64_t>(layout.rows_per_group);
  w.Write<uint64_t>(n);
  ChargeOpen();
  return WriteFileBytes(DatasetDir(dataset) + "/" + kManifestFile,
                        w.buffer());
}

Result<LocalDfs::Manifest> LocalDfs::ReadManifest(
    const std::string& dataset) const {
  std::string bytes;
  ChargeOpen();
  TS_RETURN_IF_ERROR(
      ReadFileBytes(DatasetDir(dataset) + "/" + kManifestFile, &bytes));
  BinaryReader r(bytes);
  Manifest manifest;
  TS_RETURN_IF_ERROR(ReadSchemaBody(&r, &manifest.schema));
  int32_t cpg;
  TS_RETURN_IF_ERROR(r.Read(&cpg));
  manifest.layout.columns_per_group = cpg;
  uint64_t rpg;
  TS_RETURN_IF_ERROR(r.Read(&rpg));
  manifest.layout.rows_per_group = rpg;
  uint64_t rows;
  TS_RETURN_IF_ERROR(r.Read(&rows));
  manifest.num_rows = rows;
  return manifest;
}

Result<Schema> LocalDfs::ReadSchema(const std::string& dataset) const {
  TS_ASSIGN_OR_RETURN(Manifest manifest, ReadManifest(dataset));
  return manifest.schema;
}

Result<std::vector<ColumnPtr>> LocalDfs::ReadColumns(
    const std::string& dataset, const std::vector<int>& columns) const {
  TS_ASSIGN_OR_RETURN(Manifest manifest, ReadManifest(dataset));
  const DfsLayout& layout = manifest.layout;
  const size_t n = manifest.num_rows;
  const size_t row_groups =
      n == 0 ? 0 : (n + layout.rows_per_group - 1) / layout.rows_per_group;

  std::vector<ColumnPtr> out;
  // Cache decoded group files: requesting several columns of the same
  // group reads the file once (the point of grouping).
  std::map<std::pair<int, size_t>, std::string> file_cache;

  for (int col : columns) {
    if (col < 0 || col >= manifest.schema.num_columns()) {
      return Status::InvalidArgument("column out of range");
    }
    const ColumnMeta& meta = manifest.schema.column(col);
    const int cg = col / layout.columns_per_group;
    const int offset_in_group = col % layout.columns_per_group;
    const int col_begin = cg * layout.columns_per_group;
    const int col_end = std::min(manifest.schema.num_columns(),
                                 col_begin + layout.columns_per_group);

    std::vector<double> nums;
    std::vector<int32_t> cats;
    for (size_t rg = 0; rg < row_groups; ++rg) {
      auto key = std::make_pair(cg, rg);
      auto it = file_cache.find(key);
      if (it == file_cache.end()) {
        std::string bytes;
        ChargeOpen();
        TS_RETURN_IF_ERROR(ReadFileBytes(GroupFile(dataset, cg, rg), &bytes));
        it = file_cache.emplace(key, std::move(bytes)).first;
      }
      BinaryReader r(it->second);
      // Skip earlier columns of the group.
      for (int c = col_begin; c < col_begin + offset_in_group; ++c) {
        if (manifest.schema.column(c).type == DataType::kNumeric) {
          std::vector<double> skip;
          TS_RETURN_IF_ERROR(r.ReadVector(&skip));
        } else {
          std::vector<int32_t> skip;
          TS_RETURN_IF_ERROR(r.ReadVector(&skip));
        }
      }
      (void)col_end;
      if (meta.type == DataType::kNumeric) {
        std::vector<double> chunk;
        TS_RETURN_IF_ERROR(r.ReadVector(&chunk));
        nums.insert(nums.end(), chunk.begin(), chunk.end());
      } else {
        std::vector<int32_t> chunk;
        TS_RETURN_IF_ERROR(r.ReadVector(&chunk));
        cats.insert(cats.end(), chunk.begin(), chunk.end());
      }
    }
    if (meta.type == DataType::kNumeric) {
      out.push_back(Column::Numeric(meta.name, std::move(nums)));
    } else {
      out.push_back(
          Column::Categorical(meta.name, std::move(cats), meta.cardinality));
    }
  }
  return out;
}

Result<DataTable> LocalDfs::ReadRows(const std::string& dataset,
                                     size_t begin_row, size_t end_row) const {
  TS_ASSIGN_OR_RETURN(Manifest manifest, ReadManifest(dataset));
  const DfsLayout& layout = manifest.layout;
  if (begin_row > end_row || end_row > manifest.num_rows) {
    return Status::InvalidArgument("row range out of bounds");
  }
  const int m = manifest.schema.num_columns();
  const int col_groups =
      (m + layout.columns_per_group - 1) / layout.columns_per_group;

  std::vector<std::vector<double>> nums(m);
  std::vector<std::vector<int32_t>> cats(m);

  const size_t rg_begin = begin_row / layout.rows_per_group;
  const size_t rg_end = end_row == begin_row
                            ? rg_begin
                            : (end_row - 1) / layout.rows_per_group + 1;
  for (size_t rg = rg_begin; rg < rg_end; ++rg) {
    const size_t group_start = rg * layout.rows_per_group;
    const size_t lo = std::max(begin_row, group_start);
    const size_t hi = std::min(end_row, group_start + layout.rows_per_group);
    for (int cg = 0; cg < col_groups; ++cg) {
      std::string bytes;
      ChargeOpen();
      TS_RETURN_IF_ERROR(ReadFileBytes(GroupFile(dataset, cg, rg), &bytes));
      BinaryReader r(bytes);
      const int col_begin = cg * layout.columns_per_group;
      const int col_end = std::min(m, col_begin + layout.columns_per_group);
      for (int c = col_begin; c < col_end; ++c) {
        if (manifest.schema.column(c).type == DataType::kNumeric) {
          std::vector<double> chunk;
          TS_RETURN_IF_ERROR(r.ReadVector(&chunk));
          nums[c].insert(nums[c].end(), chunk.begin() + (lo - group_start),
                         chunk.begin() + (hi - group_start));
        } else {
          std::vector<int32_t> chunk;
          TS_RETURN_IF_ERROR(r.ReadVector(&chunk));
          cats[c].insert(cats[c].end(), chunk.begin() + (lo - group_start),
                         chunk.begin() + (hi - group_start));
        }
      }
    }
  }

  std::vector<ColumnPtr> cols(m);
  for (int c = 0; c < m; ++c) {
    const ColumnMeta& meta = manifest.schema.column(c);
    if (meta.type == DataType::kNumeric) {
      cols[c] = Column::Numeric(meta.name, std::move(nums[c]));
    } else {
      cols[c] =
          Column::Categorical(meta.name, std::move(cats[c]), meta.cardinality);
    }
  }
  return DataTable::Make(manifest.schema, std::move(cols));
}

Result<DataTable> LocalDfs::ReadTable(const std::string& dataset) const {
  TS_ASSIGN_OR_RETURN(Manifest manifest, ReadManifest(dataset));
  return ReadRows(dataset, 0, manifest.num_rows);
}

}  // namespace treeserver
