#ifndef TREESERVER_FOREST_FOREST_H_
#define TREESERVER_FOREST_FOREST_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/serial.h"
#include "common/status.h"
#include "table/data_table.h"
#include "tree/model.h"
#include "tree/trainer.h"

namespace treeserver {

/// Specification of a tree-model training job, as submitted by a
/// client to the TreeServer master (Fig. 2): a single decision tree is
/// simply a forest with one tree and column_ratio = 1.
struct ForestJobSpec {
  std::string name = "forest";
  int num_trees = 1;
  TreeConfig tree;
  /// |C|/|A|: fraction of feature columns sampled per tree. 1.0 uses
  /// every column. The paper uses sqrt(|A|)/|A| for random forests;
  /// use ColumnRatioSqrt to request that.
  double column_ratio = 1.0;
  bool sqrt_columns = false;
  uint64_t seed = 1;
  /// Job ids (returned by Submit) that must complete before any tree
  /// of this job is admitted to the pool. This is the paper's
  /// dependency tracking for boosting/cascade layers (Section III,
  /// "Tree Scheduling"): bagging jobs run concurrently, boosted layers
  /// wait for their predecessors.
  std::vector<uint32_t> depends_on;

  /// Number of candidate columns per tree given |A| = num_features.
  int ColumnsPerTree(int num_features) const;

  /// Deterministic per-tree candidate set (sorted), derived from the
  /// job seed and the tree's position. The master and the serial
  /// reference both use this so their outputs coincide.
  std::vector<int> SampleColumns(const Schema& schema, int tree_index) const;

  /// Deterministic per-tree rng (only consumed by extra-trees).
  Rng TreeRng(int tree_index) const;

  /// Wire form (master checkpoints carry job specs).
  void Serialize(BinaryWriter* w) const;
  static Status Deserialize(BinaryReader* r, ForestJobSpec* out);
};

/// A bag of trained trees with averaged prediction (bagging).
class ForestModel {
 public:
  ForestModel() = default;
  ForestModel(TaskKind kind, int num_classes)
      : kind_(kind), num_classes_(num_classes) {}

  TaskKind kind() const { return kind_; }
  int num_classes() const { return num_classes_; }

  void AddTree(TreeModel tree) { trees_.push_back(std::move(tree)); }
  size_t num_trees() const { return trees_.size(); }
  const TreeModel& tree(size_t i) const { return trees_[i]; }
  const std::vector<TreeModel>& trees() const { return trees_; }

  /// Average of per-tree PMFs (classification).
  std::vector<float> PredictPmf(const DataTable& table, size_t row,
                                int max_depth = -1) const;
  int32_t PredictLabel(const DataTable& table, size_t row,
                       int max_depth = -1) const;
  /// Average of per-tree values (regression).
  double PredictValue(const DataTable& table, size_t row,
                      int max_depth = -1) const;

  void Serialize(BinaryWriter* w) const;
  static Status Deserialize(BinaryReader* r, ForestModel* out);

 private:
  TaskKind kind_ = TaskKind::kClassification;
  int num_classes_ = 0;
  std::vector<TreeModel> trees_;
};

/// Fraction of test rows whose predicted label matches (classification).
double EvaluateAccuracy(const ForestModel& model, const DataTable& test);

/// Root-mean-square error of predicted values (regression).
double EvaluateRmse(const ForestModel& model, const DataTable& test);

/// Accuracy (classification) or RMSE (regression), matching how the
/// paper's tables report "Accuracy" (RMSE for Allstate).
double EvaluateMetric(const ForestModel& model, const DataTable& test);

/// Serial (optionally multi-threaded over trees) reference trainer for
/// a forest job. The distributed engine must produce the same trees.
ForestModel TrainForestSerial(const DataTable& table,
                              const ForestJobSpec& spec, int num_threads = 1);

/// Mean-decrease-in-impurity feature importance: per column, the sum
/// over all splits of gain x rows, averaged over trees and normalized
/// to sum to 1 (all-zero if the forest never split). Indexed by column
/// id; the target column's entry is always 0.
std::vector<double> FeatureImportance(const ForestModel& model,
                                      const Schema& schema);

}  // namespace treeserver

#endif  // TREESERVER_FOREST_FOREST_H_
