#include "forest/forest.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "common/logging.h"
#include "table/binned.h"

namespace treeserver {

int ForestJobSpec::ColumnsPerTree(int num_features) const {
  if (sqrt_columns) {
    return std::max(1, static_cast<int>(std::sqrt(
                           static_cast<double>(num_features))));
  }
  double ratio = std::clamp(column_ratio, 0.0, 1.0);
  return std::max(1, static_cast<int>(ratio * num_features + 0.5));
}

std::vector<int> ForestJobSpec::SampleColumns(const Schema& schema,
                                              int tree_index) const {
  std::vector<int> features = schema.FeatureIndices();
  int want = ColumnsPerTree(static_cast<int>(features.size()));
  if (want >= static_cast<int>(features.size())) return features;
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + static_cast<uint64_t>(tree_index));
  std::vector<int> picked =
      rng.SampleWithoutReplacement(static_cast<int>(features.size()), want);
  std::vector<int> out;
  out.reserve(picked.size());
  for (int i : picked) out.push_back(features[i]);
  std::sort(out.begin(), out.end());
  return out;
}

Rng ForestJobSpec::TreeRng(int tree_index) const {
  return Rng(seed * 0xBF58476D1CE4E5B9ULL + 31 +
             static_cast<uint64_t>(tree_index) * 0x94D049BB133111EBULL);
}

void ForestJobSpec::Serialize(BinaryWriter* w) const {
  w->WriteString(name);
  w->Write(num_trees);
  w->Write(tree.max_depth);
  w->Write(tree.min_leaf);
  w->Write(static_cast<uint8_t>(tree.impurity));
  w->Write(static_cast<uint8_t>(tree.extra_trees ? 1 : 0));
  w->Write(static_cast<uint8_t>(tree.split_method));
  w->Write(tree.max_bins);
  w->Write(column_ratio);
  w->Write(static_cast<uint8_t>(sqrt_columns ? 1 : 0));
  w->Write(seed);
  w->WriteVector(depends_on);
}

Status ForestJobSpec::Deserialize(BinaryReader* r, ForestJobSpec* out) {
  TS_RETURN_IF_ERROR(r->ReadString(&out->name));
  TS_RETURN_IF_ERROR(r->Read(&out->num_trees));
  TS_RETURN_IF_ERROR(r->Read(&out->tree.max_depth));
  TS_RETURN_IF_ERROR(r->Read(&out->tree.min_leaf));
  uint8_t impurity, extra, sqrt_cols;
  TS_RETURN_IF_ERROR(r->Read(&impurity));
  out->tree.impurity = static_cast<Impurity>(impurity);
  TS_RETURN_IF_ERROR(r->Read(&extra));
  out->tree.extra_trees = extra != 0;
  uint8_t split_method;
  TS_RETURN_IF_ERROR(r->Read(&split_method));
  out->tree.split_method = static_cast<SplitMethod>(split_method);
  TS_RETURN_IF_ERROR(r->Read(&out->tree.max_bins));
  TS_RETURN_IF_ERROR(r->Read(&out->column_ratio));
  TS_RETURN_IF_ERROR(r->Read(&sqrt_cols));
  out->sqrt_columns = sqrt_cols != 0;
  TS_RETURN_IF_ERROR(r->Read(&out->seed));
  TS_RETURN_IF_ERROR(r->ReadVector(&out->depends_on));
  return Status::OK();
}

std::vector<float> ForestModel::PredictPmf(const DataTable& table, size_t row,
                                           int max_depth) const {
  std::vector<float> acc(num_classes_, 0.0f);
  if (trees_.empty()) return acc;
  for (const TreeModel& t : trees_) {
    const std::vector<float>& p = t.PredictPmf(table, row, max_depth);
    for (size_t i = 0; i < acc.size(); ++i) acc[i] += p[i];
  }
  float inv = 1.0f / static_cast<float>(trees_.size());
  for (float& v : acc) v *= inv;
  return acc;
}

int32_t ForestModel::PredictLabel(const DataTable& table, size_t row,
                                  int max_depth) const {
  std::vector<float> p = PredictPmf(table, row, max_depth);
  return static_cast<int32_t>(
      std::max_element(p.begin(), p.end()) - p.begin());
}

double ForestModel::PredictValue(const DataTable& table, size_t row,
                                 int max_depth) const {
  if (trees_.empty()) return 0.0;
  double acc = 0.0;
  for (const TreeModel& t : trees_) acc += t.PredictValue(table, row, max_depth);
  return acc / static_cast<double>(trees_.size());
}

void ForestModel::Serialize(BinaryWriter* w) const {
  w->Write(static_cast<uint8_t>(kind_));
  w->Write(static_cast<int32_t>(num_classes_));
  w->Write(static_cast<uint64_t>(trees_.size()));
  for (const TreeModel& t : trees_) t.Serialize(w);
}

Status ForestModel::Deserialize(BinaryReader* r, ForestModel* out) {
  uint8_t kind;
  TS_RETURN_IF_ERROR(r->Read(&kind));
  out->kind_ = static_cast<TaskKind>(kind);
  int32_t num_classes;
  TS_RETURN_IF_ERROR(r->Read(&num_classes));
  out->num_classes_ = num_classes;
  uint64_t count;
  TS_RETURN_IF_ERROR(r->Read(&count));
  if (count > r->remaining()) {
    return Status::Corruption("implausible tree count");
  }
  out->trees_.clear();
  out->trees_.resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    TS_RETURN_IF_ERROR(TreeModel::Deserialize(r, &out->trees_[i]));
  }
  return Status::OK();
}

double EvaluateAccuracy(const ForestModel& model, const DataTable& test) {
  TS_CHECK(test.schema().task_kind() == TaskKind::kClassification);
  if (test.num_rows() == 0) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < test.num_rows(); ++i) {
    if (model.PredictLabel(test, i) == test.label_at(i)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(test.num_rows());
}

double EvaluateRmse(const ForestModel& model, const DataTable& test) {
  TS_CHECK(test.schema().task_kind() == TaskKind::kRegression);
  if (test.num_rows() == 0) return 0.0;
  double sq = 0.0;
  for (size_t i = 0; i < test.num_rows(); ++i) {
    double d = model.PredictValue(test, i) - test.target_value_at(i);
    sq += d * d;
  }
  return std::sqrt(sq / static_cast<double>(test.num_rows()));
}

double EvaluateMetric(const ForestModel& model, const DataTable& test) {
  return model.kind() == TaskKind::kClassification
             ? EvaluateAccuracy(model, test)
             : EvaluateRmse(model, test);
}

std::vector<double> FeatureImportance(const ForestModel& model,
                                      const Schema& schema) {
  std::vector<double> importance(schema.num_columns(), 0.0);
  for (const TreeModel& tree : model.trees()) {
    tree.AccumulateImportance(&importance);
  }
  double total = 0.0;
  for (double v : importance) total += v;
  if (total > 0) {
    for (double& v : importance) v /= total;
  }
  return importance;
}

ForestModel TrainForestSerial(const DataTable& table,
                              const ForestJobSpec& spec, int num_threads) {
  const Schema& schema = table.schema();
  ForestModel model(schema.task_kind(), schema.num_classes());
  std::vector<TreeModel> trees(spec.num_trees);

  // Histogram mode: bin the table once, shared read-only by all trees.
  std::shared_ptr<const BinnedTable> binned;
  if (spec.tree.split_method == SplitMethod::kHistogram &&
      !spec.tree.extra_trees) {
    binned = BinnedTable::Build(table, spec.tree.max_bins);
  }

  auto train_one = [&](int t) {
    std::vector<int> candidates = spec.SampleColumns(schema, t);
    Rng rng = spec.TreeRng(t);
    trees[t] = TrainTreeOnTable(table, candidates, spec.tree, &rng,
                                binned.get());
  };

  if (num_threads <= 1 || spec.num_trees <= 1) {
    for (int t = 0; t < spec.num_trees; ++t) train_one(t);
  } else {
    std::vector<std::thread> pool;
    std::atomic<int> next{0};
    int workers = std::min(num_threads, spec.num_trees);
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (int t = next.fetch_add(1); t < spec.num_trees;
             t = next.fetch_add(1)) {
          train_one(t);
        }
      });
    }
    for (std::thread& th : pool) th.join();
  }

  for (TreeModel& t : trees) model.AddTree(std::move(t));
  return model;
}

}  // namespace treeserver
