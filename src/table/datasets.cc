#include "table/datasets.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace treeserver {

std::vector<DatasetProfile> PaperProfiles(double scale, size_t min_rows) {
  // Row counts and feature mixes from Table I of the paper.
  struct Raw {
    const char* name;
    size_t rows;
    int num;
    int cat;
    int classes;  // 0 = regression
    double missing;
  };
  static const Raw kRaw[] = {
      {"Allstate", 13184290, 13, 14, 0, 0.05},
      {"Higgs_boson", 11000000, 28, 0, 2, 0.0},
      {"MS_LTRC", 723412, 136, 1, 5, 0.0},
      {"c14B", 473134, 700, 0, 5, 0.0},
      {"Covtype", 581012, 54, 0, 7, 0.0},
      {"Poker", 1025010, 0, 11, 10, 0.0},
      {"KDD99", 4898431, 38, 3, 5, 0.0},
      {"SUSY", 5000000, 18, 0, 2, 0.0},
      {"loan_m1", 6372703, 14, 13, 2, 0.0},
      {"loan_y1", 29581722, 14, 13, 2, 0.0},
      {"loan_y2", 54468375, 14, 13, 2, 0.0},
  };
  std::vector<DatasetProfile> out;
  for (const Raw& r : kRaw) {
    DatasetProfile p;
    p.name = r.name;
    p.rows = std::max<size_t>(
        min_rows, static_cast<size_t>(static_cast<double>(r.rows) * scale));
    p.num_numeric = r.num;
    p.num_categorical = r.cat;
    p.num_classes = r.classes;
    p.missing_fraction = r.missing;
    out.push_back(std::move(p));
  }
  return out;
}

DatasetProfile PaperProfile(const std::string& name, double scale,
                            size_t min_rows) {
  for (DatasetProfile& p : PaperProfiles(scale, min_rows)) {
    if (p.name == name) return p;
  }
  TS_LOG(kFatal) << "unknown dataset profile: " << name;
  return DatasetProfile{};
}

namespace {

// The planted ground-truth concept is a random decision tree over a
// small set of numeric LATENT factors. Every visible feature is a
// noisy view of one latent (numeric features mix the latent with
// uniform noise; categorical features quantize it through a random
// permutation with occasional flips). This mirrors real tabular data,
// where informative signals appear redundantly across correlated
// columns — which is what makes column-sampled forests work and gives
// exact split finding its measurable edge over binned splits.
struct ConceptNode {
  bool leaf = false;
  int latent = -1;
  double threshold = 0.0;
  int left = -1;
  int right = -1;
  int32_t label = 0;   // classification leaf output
  double value = 0.0;  // regression leaf output
};

struct Concept {
  std::vector<ConceptNode> nodes;
  int num_latents = 0;

  int Build(int depth, int max_depth, const DatasetProfile& profile,
            Rng* rng) {
    int id = static_cast<int>(nodes.size());
    nodes.emplace_back();
    if (depth >= max_depth) {
      nodes[id].leaf = true;
      if (profile.num_classes > 0) {
        nodes[id].label = static_cast<int32_t>(
            rng->Uniform(static_cast<uint64_t>(profile.num_classes)));
      } else {
        nodes[id].value = rng->UniformDouble(0.0, 100.0);
      }
      return id;
    }
    nodes[id].latent = static_cast<int>(
        rng->Uniform(static_cast<uint64_t>(num_latents)));
    // Thresholds away from the extremes keep both branches populated.
    nodes[id].threshold = rng->UniformDouble(0.3, 0.7);
    int l = Build(depth + 1, max_depth, profile, rng);
    int r = Build(depth + 1, max_depth, profile, rng);
    nodes[id].left = l;
    nodes[id].right = r;
    return id;
  }

  const ConceptNode& Evaluate(const std::vector<double>& latents) const {
    int id = 0;
    while (!nodes[id].leaf) {
      const ConceptNode& node = nodes[id];
      id = latents[node.latent] <= node.threshold ? node.left : node.right;
    }
    return nodes[id];
  }
};

}  // namespace

DataTable GenerateTable(const DatasetProfile& profile, uint64_t seed) {
  Rng rng(seed ^ 0xABCDEF1234567890ULL);
  const int m = profile.num_features();
  TS_CHECK(m > 0) << "profile needs at least one feature";

  Concept planted;
  planted.num_latents = std::max(2, std::min(8, m));
  planted.Build(0, profile.concept_depth, profile, &rng);

  // Per-feature view parameters.
  std::vector<int> latent_of(m);
  std::vector<double> mix(m);  // numeric: weight of the latent signal
  std::vector<int> cardinalities(m, 0);
  std::vector<std::vector<int32_t>> perms(m);
  for (int j = 0; j < m; ++j) {
    latent_of[j] = j % planted.num_latents;
    mix[j] = rng.UniformDouble(0.85, 0.98);
    if (j >= profile.num_numeric) {
      int card = static_cast<int>(rng.UniformInt(2, 12));
      cardinalities[j] = card;
      perms[j].resize(card);
      for (int c = 0; c < card; ++c) perms[j][c] = c;
      rng.Shuffle(&perms[j]);
    }
  }

  const size_t n = profile.rows;
  std::vector<std::vector<double>> nums(profile.num_numeric);
  for (auto& v : nums) v.reserve(n);
  std::vector<std::vector<int32_t>> cats(profile.num_categorical);
  for (auto& v : cats) v.reserve(n);
  std::vector<int32_t> labels;
  std::vector<double> values;
  if (profile.num_classes > 0) {
    labels.reserve(n);
  } else {
    values.reserve(n);
  }

  std::vector<double> latents(planted.num_latents);
  for (size_t i = 0; i < n; ++i) {
    for (double& l : latents) l = rng.UniformDouble();
    const ConceptNode& leaf = planted.Evaluate(latents);
    if (profile.num_classes > 0) {
      int32_t y = leaf.label;
      if (rng.Bernoulli(profile.noise)) {
        y = static_cast<int32_t>(
            rng.Uniform(static_cast<uint64_t>(profile.num_classes)));
      }
      labels.push_back(y);
    } else {
      values.push_back(leaf.value + 100.0 * rng.Normal() * profile.noise);
    }
    for (int j = 0; j < m; ++j) {
      const double lat = latents[latent_of[j]];
      if (j < profile.num_numeric) {
        double v = mix[j] * lat + (1.0 - mix[j]) * rng.UniformDouble();
        if (profile.missing_fraction > 0 &&
            rng.Bernoulli(profile.missing_fraction)) {
          v = MissingNumeric();
        }
        nums[j].push_back(v);
      } else {
        const int card = cardinalities[j];
        int32_t code = perms[j][std::min<int>(
            card - 1, static_cast<int>(lat * card))];
        if (rng.Bernoulli(0.08)) {
          code = static_cast<int32_t>(
              rng.Uniform(static_cast<uint64_t>(card)));
        }
        if (profile.missing_fraction > 0 &&
            rng.Bernoulli(profile.missing_fraction)) {
          code = kMissingCategory;
        }
        cats[j - profile.num_numeric].push_back(code);
      }
    }
  }

  std::vector<ColumnMeta> metas;
  std::vector<ColumnPtr> cols;
  for (int j = 0; j < profile.num_numeric; ++j) {
    std::string name = "num" + std::to_string(j);
    cols.push_back(Column::Numeric(name, std::move(nums[j])));
    metas.push_back(ColumnMeta{name, DataType::kNumeric, 0});
  }
  for (int j = 0; j < profile.num_categorical; ++j) {
    std::string name = "cat" + std::to_string(j);
    int32_t card =
        static_cast<int32_t>(cardinalities[profile.num_numeric + j]);
    cols.push_back(Column::Categorical(name, std::move(cats[j]), card));
    metas.push_back(ColumnMeta{name, DataType::kCategorical, card});
  }
  if (profile.num_classes > 0) {
    cols.push_back(Column::Categorical("Y", std::move(labels),
                                       profile.num_classes));
    metas.push_back(ColumnMeta{"Y", DataType::kCategorical,
                               profile.num_classes});
  } else {
    cols.push_back(Column::Numeric("Y", std::move(values)));
    metas.push_back(ColumnMeta{"Y", DataType::kNumeric, 0});
  }
  int target = static_cast<int>(cols.size()) - 1;
  Result<DataTable> table = DataTable::Make(
      Schema(std::move(metas), target, profile.task_kind()), std::move(cols));
  TS_CHECK(table.ok()) << table.status().ToString();
  return std::move(table).value();
}

ImageDataset GenerateImages(size_t n, uint64_t seed, int width, int height,
                            int num_classes) {
  Rng rng(seed ^ 0x1122334455667788ULL);
  ImageDataset ds;
  ds.width = width;
  ds.height = height;
  ds.num_classes = num_classes;

  const int pixels = width * height;
  // Each class is a set of random axis-aligned strokes; images are the
  // class pattern modulated by intensity plus Gaussian pixel noise.
  // The patterns depend only on the image geometry — NOT on `seed` —
  // so datasets generated with different seeds (e.g. train vs test)
  // share the same class definitions.
  Rng pattern_rng(0x5157EC7A11ULL + static_cast<uint64_t>(width) * 131 +
                  static_cast<uint64_t>(height) * 17 +
                  static_cast<uint64_t>(num_classes));
  std::vector<std::vector<float>> patterns(num_classes,
                                           std::vector<float>(pixels, 0.0f));
  for (int c = 0; c < num_classes; ++c) {
    int strokes = 3 + static_cast<int>(pattern_rng.Uniform(3));
    for (int s = 0; s < strokes; ++s) {
      bool horizontal = pattern_rng.Bernoulli(0.5);
      int len = 6 + static_cast<int>(pattern_rng.Uniform(10));
      int x = static_cast<int>(
          pattern_rng.Uniform(static_cast<uint64_t>(width)));
      int y = static_cast<int>(
          pattern_rng.Uniform(static_cast<uint64_t>(height)));
      for (int t = 0; t < len; ++t) {
        int px = horizontal ? std::min(width - 1, x + t) : x;
        int py = horizontal ? y : std::min(height - 1, y + t);
        patterns[c][py * width + px] = 1.0f;
      }
    }
  }

  ds.images.reserve(n);
  ds.labels.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    int32_t c = static_cast<int32_t>(
        rng.Uniform(static_cast<uint64_t>(num_classes)));
    float intensity = 0.45f + 0.55f * static_cast<float>(rng.UniformDouble());
    std::vector<float> img(pixels);
    for (int p = 0; p < pixels; ++p) {
      // Heavy pixel noise plus occasional dropout keeps the task away
      // from 100% accuracy, like real digit data.
      float v = patterns[c][p] * intensity +
                0.25f * static_cast<float>(rng.Normal());
      if (rng.Bernoulli(0.04)) v = static_cast<float>(rng.UniformDouble());
      img[p] = std::clamp(v, 0.0f, 1.0f);
    }
    ds.images.push_back(std::move(img));
    ds.labels.push_back(c);
  }
  return ds;
}

}  // namespace treeserver
