#include "table/data_table.h"

#include <algorithm>

#include "common/logging.h"

namespace treeserver {

const char* TaskKindName(TaskKind kind) {
  switch (kind) {
    case TaskKind::kClassification:
      return "classification";
    case TaskKind::kRegression:
      return "regression";
  }
  return "?";
}

std::vector<int> Schema::FeatureIndices() const {
  std::vector<int> out;
  out.reserve(columns_.size() - 1);
  for (int i = 0; i < num_columns(); ++i) {
    if (i != target_) out.push_back(i);
  }
  return out;
}

DataTable::DataTable(Schema schema, std::vector<ColumnPtr> columns)
    : schema_(std::move(schema)), columns_(std::move(columns)) {
  num_rows_ = columns_.empty() ? 0 : columns_[0]->size();
}

Result<DataTable> DataTable::Make(Schema schema,
                                  std::vector<ColumnPtr> columns) {
  if (static_cast<int>(columns.size()) != schema.num_columns()) {
    return Status::InvalidArgument("column count does not match schema");
  }
  if (schema.target_index() < 0 ||
      schema.target_index() >= schema.num_columns()) {
    return Status::InvalidArgument("target index out of range");
  }
  size_t rows = columns.empty() ? 0 : columns[0]->size();
  for (int i = 0; i < schema.num_columns(); ++i) {
    if (columns[i] == nullptr) {
      return Status::InvalidArgument("null column");
    }
    if (columns[i]->size() != rows) {
      return Status::InvalidArgument("column length mismatch: " +
                                     columns[i]->name());
    }
    if (columns[i]->type() != schema.column(i).type) {
      return Status::InvalidArgument("column type mismatch: " +
                                     columns[i]->name());
    }
  }
  const ColumnMeta& target = schema.column(schema.target_index());
  if (schema.task_kind() == TaskKind::kClassification &&
      target.type != DataType::kCategorical) {
    return Status::InvalidArgument(
        "classification requires a categorical target");
  }
  if (schema.task_kind() == TaskKind::kRegression &&
      target.type != DataType::kNumeric) {
    return Status::InvalidArgument("regression requires a numeric target");
  }
  return DataTable(std::move(schema), std::move(columns));
}

DataTable DataTable::ForGatheredSubset(Schema schema,
                                       std::vector<ColumnPtr> columns,
                                       size_t num_rows) {
  DataTable t;
  t.schema_ = std::move(schema);
  t.columns_ = std::move(columns);
  t.num_rows_ = num_rows;
  return t;
}

size_t DataTable::ByteSize() const {
  size_t total = 0;
  for (const ColumnPtr& c : columns_) total += c->ByteSize();
  return total;
}

DataTable DataTable::GatherRows(const std::vector<uint32_t>& rows) const {
  std::vector<ColumnPtr> cols;
  cols.reserve(columns_.size());
  for (const ColumnPtr& c : columns_) cols.push_back(c->Gather(rows));
  return DataTable(schema_, std::move(cols));
}

std::pair<DataTable, DataTable> DataTable::TrainTestSplit(double test_fraction,
                                                          Rng* rng) const {
  std::vector<uint32_t> order(num_rows_);
  for (size_t i = 0; i < num_rows_; ++i) order[i] = static_cast<uint32_t>(i);
  rng->Shuffle(&order);
  size_t test_n = static_cast<size_t>(
      static_cast<double>(num_rows_) * test_fraction);
  std::vector<uint32_t> test_rows(order.begin(), order.begin() + test_n);
  std::vector<uint32_t> train_rows(order.begin() + test_n, order.end());
  return {GatherRows(train_rows), GatherRows(test_rows)};
}

DataTable DataTable::WithExtraFeatures(
    const std::vector<ColumnPtr>& extra) const {
  std::vector<ColumnMeta> metas;
  std::vector<ColumnPtr> cols;
  for (int i = 0; i < num_columns(); ++i) {
    if (i == schema_.target_index()) continue;
    metas.push_back(schema_.column(i));
    cols.push_back(columns_[i]);
  }
  for (const ColumnPtr& c : extra) {
    TS_CHECK(c->size() == num_rows_) << "extra feature length mismatch";
    metas.push_back(ColumnMeta{c->name(), c->type(), c->cardinality()});
    cols.push_back(c);
  }
  metas.push_back(schema_.column(schema_.target_index()));
  cols.push_back(columns_[schema_.target_index()]);
  Schema schema(std::move(metas), static_cast<int>(cols.size()) - 1,
                schema_.task_kind());
  return DataTable(std::move(schema), std::move(cols));
}

}  // namespace treeserver
