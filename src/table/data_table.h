#ifndef TREESERVER_TABLE_DATA_TABLE_H_
#define TREESERVER_TABLE_DATA_TABLE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "table/column.h"

namespace treeserver {

/// Whether the target attribute Y is a class label or a real value.
enum class TaskKind : uint8_t {
  kClassification = 0,
  kRegression = 1,
};

const char* TaskKindName(TaskKind kind);

/// Per-column metadata.
struct ColumnMeta {
  std::string name;
  DataType type = DataType::kNumeric;
  /// Number of distinct categories; 0 for numeric columns.
  int32_t cardinality = 0;
};

/// Table schema: the feature columns A_1..A_m plus the designated
/// target column Y and the learning task kind.
class Schema {
 public:
  Schema() = default;
  Schema(std::vector<ColumnMeta> columns, int target_index, TaskKind kind)
      : columns_(std::move(columns)), target_(target_index), kind_(kind) {}

  int num_columns() const { return static_cast<int>(columns_.size()); }
  /// Number of predictive attributes (excludes the target).
  int num_features() const { return num_columns() - 1; }
  int target_index() const { return target_; }
  TaskKind task_kind() const { return kind_; }
  const ColumnMeta& column(int i) const { return columns_[i]; }

  /// For classification, the number of classes (target cardinality).
  int num_classes() const {
    return kind_ == TaskKind::kClassification ? columns_[target_].cardinality
                                              : 0;
  }

  /// Indices of all feature columns, in order.
  std::vector<int> FeatureIndices() const;

 private:
  std::vector<ColumnMeta> columns_;
  int target_ = -1;
  TaskKind kind_ = TaskKind::kClassification;
};

/// An in-memory columnar data table.
///
/// Columns are shared_ptrs so the simulated cluster can hand the same
/// physical column to several workers (replication factor k) without
/// copying, while the byte accounting still charges each replica.
class DataTable {
 public:
  DataTable() = default;
  DataTable(Schema schema, std::vector<ColumnPtr> columns);

  /// Validates column count/length consistency against the schema.
  static Result<DataTable> Make(Schema schema, std::vector<ColumnPtr> columns);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  const ColumnPtr& column(int i) const { return columns_[i]; }
  const ColumnPtr& target() const { return columns_[schema_.target_index()]; }

  /// Class label of a row (classification tables only).
  int32_t label_at(size_t row) const { return target()->category_at(row); }
  /// Target value of a row (regression tables only).
  double target_value_at(size_t row) const {
    return target()->numeric_at(row);
  }

  /// Total payload bytes across all columns.
  size_t ByteSize() const;

  /// Returns a new table with only the rows in `rows` (in that order).
  DataTable GatherRows(const std::vector<uint32_t>& rows) const;

  /// Engine-internal: builds a table whose column vector may contain
  /// nulls (columns outside a subtree-task's candidate set C); only
  /// the filled columns may be accessed. `num_rows` is trusted.
  static DataTable ForGatheredSubset(Schema schema,
                                     std::vector<ColumnPtr> columns,
                                     size_t num_rows);

  /// Splits rows into train/test with the given test fraction.
  /// Deterministic given the rng.
  std::pair<DataTable, DataTable> TrainTestSplit(double test_fraction,
                                                 Rng* rng) const;

  /// Returns a table with the same rows but an extra block of feature
  /// columns appended before the target (used by cascade-forest
  /// re-representation). The target column and task kind are preserved.
  DataTable WithExtraFeatures(const std::vector<ColumnPtr>& extra) const;

 private:
  Schema schema_;
  std::vector<ColumnPtr> columns_;
  size_t num_rows_ = 0;
};

}  // namespace treeserver

#endif  // TREESERVER_TABLE_DATA_TABLE_H_
