#ifndef TREESERVER_TABLE_CSV_H_
#define TREESERVER_TABLE_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "table/data_table.h"

namespace treeserver {

/// Options controlling CSV ingestion.
struct CsvOptions {
  char delimiter = ',';
  /// Tokens treated as missing values.
  std::vector<std::string> na_values = {"", "NA", "?", "null", "NULL"};
  /// Name of the target column. Empty means the last column.
  std::string target_column;
  /// Force the learning task; if unset it is inferred: categorical
  /// target -> classification, numeric target -> regression.
  bool has_task_kind = false;
  TaskKind task_kind = TaskKind::kClassification;
};

/// Parses CSV text (with a header row) into a DataTable.
///
/// Column types are inferred: a column whose every non-missing token
/// parses as a floating-point number is numeric; anything else is
/// categorical, with codes assigned by a per-column dictionary in
/// first-appearance order. Mirrors the "flexible user data input like
/// in pandas" behaviour the paper describes (runtime type inference).
Result<DataTable> ReadCsvString(const std::string& text,
                                const CsvOptions& options = CsvOptions());

/// Reads a CSV file from disk.
Result<DataTable> ReadCsvFile(const std::string& path,
                              const CsvOptions& options = CsvOptions());

/// Serializes a table back to CSV text (used by tests and the DFS
/// "put" pipeline). Categorical codes are written as c<code>.
std::string WriteCsvString(const DataTable& table, char delimiter = ',');

}  // namespace treeserver

#endif  // TREESERVER_TABLE_CSV_H_
