#include "table/csv.h"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>

namespace treeserver {

namespace {

// Splits one CSV line on the delimiter. No quoting support: the data
// this library generates and consumes is plain numeric/categorical.
std::vector<std::string> SplitLine(const std::string& line, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : line) {
    if (c == delim) {
      out.push_back(cur);
      cur.clear();
    } else if (c != '\r') {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

bool ParseDouble(const std::string& s, double* out) {
  const char* begin = s.data();
  const char* end = begin + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

bool IsNa(const std::string& token, const CsvOptions& options) {
  for (const std::string& na : options.na_values) {
    if (token == na) return true;
  }
  return false;
}

}  // namespace

Result<DataTable> ReadCsvString(const std::string& text,
                                const CsvOptions& options) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("CSV: empty input");
  }
  std::vector<std::string> names = SplitLine(line, options.delimiter);
  const int m = static_cast<int>(names.size());
  if (m == 0) return Status::InvalidArgument("CSV: no columns");

  std::vector<std::vector<std::string>> cells(m);
  size_t n_rows = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> tokens = SplitLine(line, options.delimiter);
    if (static_cast<int>(tokens.size()) != m) {
      return Status::InvalidArgument("CSV: row " + std::to_string(n_rows + 1) +
                                     " has " + std::to_string(tokens.size()) +
                                     " fields, expected " + std::to_string(m));
    }
    for (int j = 0; j < m; ++j) cells[j].push_back(std::move(tokens[j]));
    ++n_rows;
  }
  if (n_rows == 0) return Status::InvalidArgument("CSV: no data rows");

  // Type inference: numeric iff all non-missing tokens parse as double.
  std::vector<bool> is_numeric(m, true);
  for (int j = 0; j < m; ++j) {
    bool any_value = false;
    for (const std::string& tok : cells[j]) {
      if (IsNa(tok, options)) continue;
      any_value = true;
      double v;
      if (!ParseDouble(tok, &v)) {
        is_numeric[j] = false;
        break;
      }
    }
    if (!any_value) is_numeric[j] = false;  // all-missing: categorical
  }

  int target = m - 1;
  if (!options.target_column.empty()) {
    target = -1;
    for (int j = 0; j < m; ++j) {
      if (names[j] == options.target_column) target = j;
    }
    if (target < 0) {
      return Status::NotFound("CSV: target column '" + options.target_column +
                              "' not in header");
    }
  }

  TaskKind kind = options.has_task_kind
                      ? options.task_kind
                      : (is_numeric[target] ? TaskKind::kRegression
                                            : TaskKind::kClassification);
  if (kind == TaskKind::kClassification && is_numeric[target]) {
    // A numeric-looking label column (e.g. digits 0..9) is re-read as
    // categorical so classification works out of the box.
    is_numeric[target] = false;
  }
  if (kind == TaskKind::kRegression && !is_numeric[target]) {
    return Status::InvalidArgument("CSV: regression target is not numeric");
  }

  std::vector<ColumnMeta> metas(m);
  std::vector<ColumnPtr> cols(m);
  for (int j = 0; j < m; ++j) {
    if (is_numeric[j]) {
      std::vector<double> values;
      values.reserve(n_rows);
      for (const std::string& tok : cells[j]) {
        if (IsNa(tok, options)) {
          values.push_back(MissingNumeric());
        } else {
          double v;
          ParseDouble(tok, &v);
          values.push_back(v);
        }
      }
      cols[j] = Column::Numeric(names[j], std::move(values));
      metas[j] = ColumnMeta{names[j], DataType::kNumeric, 0};
    } else {
      std::unordered_map<std::string, int32_t> dict;
      std::vector<int32_t> codes;
      codes.reserve(n_rows);
      for (const std::string& tok : cells[j]) {
        if (IsNa(tok, options)) {
          codes.push_back(kMissingCategory);
          continue;
        }
        auto [it, inserted] =
            dict.emplace(tok, static_cast<int32_t>(dict.size()));
        codes.push_back(it->second);
      }
      int32_t card = static_cast<int32_t>(dict.size());
      cols[j] = Column::Categorical(names[j], std::move(codes), card);
      metas[j] = ColumnMeta{names[j], DataType::kCategorical, card};
    }
  }

  return DataTable::Make(Schema(std::move(metas), target, kind),
                         std::move(cols));
}

Result<DataTable> ReadCsvFile(const std::string& path,
                              const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ReadCsvString(buf.str(), options);
}

std::string WriteCsvString(const DataTable& table, char delimiter) {
  std::ostringstream out;
  const Schema& schema = table.schema();
  for (int j = 0; j < table.num_columns(); ++j) {
    if (j > 0) out << delimiter;
    out << schema.column(j).name;
  }
  out << "\n";
  char buf[64];
  for (size_t i = 0; i < table.num_rows(); ++i) {
    for (int j = 0; j < table.num_columns(); ++j) {
      if (j > 0) out << delimiter;
      const ColumnPtr& c = table.column(j);
      if (c->IsMissing(i)) continue;  // empty field = missing
      if (c->type() == DataType::kNumeric) {
        std::snprintf(buf, sizeof(buf), "%.17g", c->numeric_at(i));
        out << buf;
      } else {
        out << "c" << c->category_at(i);
      }
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace treeserver
