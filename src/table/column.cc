#include "table/column.h"

namespace treeserver {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kNumeric:
      return "numeric";
    case DataType::kCategorical:
      return "categorical";
  }
  return "?";
}

std::shared_ptr<Column> Column::Numeric(std::string name,
                                        std::vector<double> values) {
  auto col = std::shared_ptr<Column>(new Column());
  col->type_ = DataType::kNumeric;
  col->name_ = std::move(name);
  col->num_ = std::move(values);
  return col;
}

std::shared_ptr<Column> Column::Categorical(std::string name,
                                            std::vector<int32_t> codes,
                                            int32_t cardinality) {
  auto col = std::shared_ptr<Column>(new Column());
  col->type_ = DataType::kCategorical;
  col->name_ = std::move(name);
  col->cat_ = std::move(codes);
  col->cardinality_ = cardinality;
  return col;
}

std::shared_ptr<Column> Column::Gather(
    const std::vector<uint32_t>& rows) const {
  if (type_ == DataType::kNumeric) {
    std::vector<double> out;
    out.reserve(rows.size());
    for (uint32_t r : rows) out.push_back(num_[r]);
    return Numeric(name_, std::move(out));
  }
  std::vector<int32_t> out;
  out.reserve(rows.size());
  for (uint32_t r : rows) out.push_back(cat_[r]);
  return Categorical(name_, std::move(out), cardinality_);
}

}  // namespace treeserver
