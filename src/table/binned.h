#ifndef TREESERVER_TABLE_BINNED_H_
#define TREESERVER_TABLE_BINNED_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "table/data_table.h"

namespace treeserver {

/// Quantile-binned view of one numeric column.
///
/// Every non-missing value is mapped to a bin code in [0, num_bins);
/// missing values map to the dedicated missing bin `num_bins`. Bin b
/// covers the value range (upper(b-1), upper(b)], where upper(b) is the
/// largest value of the column that falls into bin b — an actual data
/// value, so histogram split thresholds stay real observations exactly
/// like exact-mode thresholds. When the column has at most `max_bins`
/// distinct values each distinct value gets its own bin and binned
/// split finding degenerates to the exact algorithm.
///
/// Codes are stored as uint8 when num_bins + 1 (the missing bin) fits
/// in a byte, uint16 otherwise. Boundaries are shared (shared_ptr) so a
/// rebinned gathered subset reuses the full-table boundaries.
class BinnedColumn {
 public:
  /// Builds bins + codes from a numeric column. `max_bins` is clamped
  /// to [2, 65535].
  static std::unique_ptr<BinnedColumn> Build(const Column& column,
                                             int max_bins);

  /// Re-codes a gathered subset of the same underlying column against
  /// this column's boundaries: row i of `gathered` receives the same
  /// code the original row had in the full table.
  std::unique_ptr<BinnedColumn> BindGathered(const Column& gathered) const;

  /// Value bins (excluding the missing bin).
  int num_bins() const { return num_bins_; }
  /// Code used for missing values; also the histogram slot count is
  /// missing_code() + 1.
  int missing_code() const { return num_bins_; }
  size_t num_rows() const {
    return wide_ ? codes16_.size() : codes8_.size();
  }
  bool wide() const { return wide_; }

  uint16_t code_at(size_t row) const {
    return wide_ ? codes16_[row] : codes8_[row];
  }

  /// Raw code arrays for the SIMD kernels and the quantized serving
  /// layout: exactly one is non-null, matching wide().
  const uint8_t* codes8_data() const {
    return wide_ ? nullptr : codes8_.data();
  }
  const uint16_t* codes16_data() const {
    return wide_ ? codes16_.data() : nullptr;
  }

  /// Largest column value in bin b — the split threshold "v <= upper".
  double upper(int bin) const { return (*upper_)[bin]; }

  /// Bin code of a raw value (missing_code() for NaN).
  uint16_t CodeOf(double v) const;

  /// Payload bytes (codes + boundaries), for memory accounting.
  size_t ByteSize() const;

 private:
  BinnedColumn() = default;

  int num_bins_ = 0;
  bool wide_ = false;
  std::shared_ptr<const std::vector<double>> upper_;
  std::vector<uint8_t> codes8_;
  std::vector<uint16_t> codes16_;
};

/// Per-table bin index: one BinnedColumn per numeric feature column,
/// built once at table load and shared read-only across every tree and
/// task in the pool. Categorical columns and the target are not binned
/// (categorical split finding is already a per-category histogram).
class BinnedTable {
 public:
  /// Bins every numeric feature column of `table`. O(n log n) per
  /// column, once per table.
  static std::shared_ptr<const BinnedTable> Build(const DataTable& table,
                                                  int max_bins);

  /// Binned view of a gathered subset (a subtree-task's D_x): columns
  /// in `columns` that are numeric re-code their gathered values
  /// against this table's global boundaries, so a subtree task splits
  /// on exactly the bins the full-table view would.
  static std::shared_ptr<const BinnedTable> BindGathered(
      const BinnedTable& global, const DataTable& gathered,
      const std::vector<int>& columns);

  /// The binned view of column `i`, or nullptr when the column is not
  /// binned (categorical, target, or absent from a gathered subset).
  const BinnedColumn* column(int i) const {
    return i >= 0 && i < static_cast<int>(columns_.size())
               ? columns_[i].get()
               : nullptr;
  }

  int max_bins() const { return max_bins_; }
  size_t ByteSize() const;

 private:
  BinnedTable() = default;

  int max_bins_ = 0;
  std::vector<std::unique_ptr<BinnedColumn>> columns_;
};

}  // namespace treeserver

#endif  // TREESERVER_TABLE_BINNED_H_
