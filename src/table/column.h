#ifndef TREESERVER_TABLE_COLUMN_H_
#define TREESERVER_TABLE_COLUMN_H_

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/status.h"

namespace treeserver {

/// Physical type of a table column. The paper distinguishes ordinal
/// (numeric) attributes, split by "A_i <= v", from categorical
/// attributes, split by "A_i in S_l".
enum class DataType : uint8_t {
  kNumeric = 0,
  kCategorical = 1,
};

const char* DataTypeName(DataType type);

/// Sentinel for a missing categorical value.
inline constexpr int32_t kMissingCategory = -1;

/// Returns a quiet NaN, the in-band representation of a missing
/// numeric value.
inline double MissingNumeric() {
  return std::numeric_limits<double>::quiet_NaN();
}

inline bool IsMissingNumeric(double v) { return std::isnan(v); }

/// An immutable, fully materialized attribute column.
///
/// TreeServer's data layout is columnar: every worker holds entire
/// columns (Section III), so the column is the unit of storage,
/// transfer and replication. Numeric values use double with NaN for
/// missing; categorical values use dense codes [0, cardinality) with
/// -1 for missing.
class Column {
 public:
  /// Creates a numeric column.
  static std::shared_ptr<Column> Numeric(std::string name,
                                         std::vector<double> values);

  /// Creates a categorical column with codes in [0, cardinality).
  static std::shared_ptr<Column> Categorical(std::string name,
                                             std::vector<int32_t> codes,
                                             int32_t cardinality);

  DataType type() const { return type_; }
  const std::string& name() const { return name_; }
  size_t size() const {
    return type_ == DataType::kNumeric ? num_.size() : cat_.size();
  }

  /// Distinct-category count; only meaningful for categorical columns.
  int32_t cardinality() const { return cardinality_; }

  const std::vector<double>& numeric_values() const {
    TS_DCHECK(type_ == DataType::kNumeric);
    return num_;
  }
  const std::vector<int32_t>& categorical_codes() const {
    TS_DCHECK(type_ == DataType::kCategorical);
    return cat_;
  }

  double numeric_at(size_t row) const { return num_[row]; }
  int32_t category_at(size_t row) const { return cat_[row]; }

  bool IsMissing(size_t row) const {
    return type_ == DataType::kNumeric ? IsMissingNumeric(num_[row])
                                       : cat_[row] == kMissingCategory;
  }

  /// Bytes of payload this column occupies (used for the simulated
  /// network/memory accounting).
  size_t ByteSize() const {
    return type_ == DataType::kNumeric ? num_.size() * sizeof(double)
                                       : cat_.size() * sizeof(int32_t);
  }

  /// Materializes the subset of values at `rows` as a new column with
  /// the same type/name. This models extracting D_x values to serve a
  /// subtree-task's data request.
  std::shared_ptr<Column> Gather(const std::vector<uint32_t>& rows) const;

 private:
  Column() = default;

  DataType type_ = DataType::kNumeric;
  std::string name_;
  std::vector<double> num_;
  std::vector<int32_t> cat_;
  int32_t cardinality_ = 0;
};

using ColumnPtr = std::shared_ptr<Column>;

}  // namespace treeserver

#endif  // TREESERVER_TABLE_COLUMN_H_
