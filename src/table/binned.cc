#include "table/binned.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace treeserver {

namespace {

constexpr int kMinBins = 2;
constexpr int kMaxBins = 65535;

int ClampBins(int max_bins) {
  return std::max(kMinBins, std::min(kMaxBins, max_bins));
}

}  // namespace

uint16_t BinnedColumn::CodeOf(double v) const {
  if (IsMissingNumeric(v)) return static_cast<uint16_t>(missing_code());
  const std::vector<double>& upper = *upper_;
  // First bin whose upper bound is >= v. Values above the global max
  // (possible only for data outside the build set) clamp to the last
  // bin.
  size_t b = std::lower_bound(upper.begin(), upper.end(), v) - upper.begin();
  if (b >= upper.size()) b = upper.size() - 1;
  return static_cast<uint16_t>(b);
}

size_t BinnedColumn::ByteSize() const {
  return codes8_.size() * sizeof(uint8_t) +
         codes16_.size() * sizeof(uint16_t) +
         (upper_ ? upper_->size() * sizeof(double) : 0);
}

std::unique_ptr<BinnedColumn> BinnedColumn::Build(const Column& column,
                                                  int max_bins) {
  TS_CHECK(column.type() == DataType::kNumeric)
      << "only numeric columns are binned";
  max_bins = ClampBins(max_bins);
  const std::vector<double>& values = column.numeric_values();

  std::vector<double> sorted;
  sorted.reserve(values.size());
  for (double v : values) {
    if (!IsMissingNumeric(v)) sorted.push_back(v);
  }
  std::sort(sorted.begin(), sorted.end());

  auto upper = std::make_shared<std::vector<double>>();
  if (!sorted.empty()) {
    std::vector<double> distinct;
    distinct.reserve(std::min<size_t>(sorted.size(),
                                      static_cast<size_t>(max_bins) + 1));
    for (double v : sorted) {
      if (distinct.empty() || v != distinct.back()) distinct.push_back(v);
      if (distinct.size() > static_cast<size_t>(max_bins)) break;
    }
    if (distinct.size() <= static_cast<size_t>(max_bins)) {
      // Few distinct values: one bin per value, binned == exact.
      *upper = std::move(distinct);
    } else {
      // Quantile cuts: bin b's upper bound is the value at rank
      // (b+1) * k / max_bins - 1, deduplicated (heavy values swallow
      // neighbouring quantiles). The last cut is always the max.
      const size_t k = sorted.size();
      upper->reserve(max_bins);
      for (int b = 0; b < max_bins; ++b) {
        size_t rank =
            (static_cast<size_t>(b) + 1) * k / static_cast<size_t>(max_bins);
        double v = sorted[rank == 0 ? 0 : rank - 1];
        if (upper->empty() || v != upper->back()) upper->push_back(v);
      }
      if (upper->back() != sorted.back()) upper->push_back(sorted.back());
    }
  }

  auto out = std::unique_ptr<BinnedColumn>(new BinnedColumn());
  out->num_bins_ = static_cast<int>(upper->size());
  out->upper_ = std::move(upper);
  out->wide_ = out->num_bins_ + 1 > 256;
  if (out->wide_) {
    out->codes16_.resize(values.size());
    for (size_t i = 0; i < values.size(); ++i) {
      out->codes16_[i] = out->CodeOf(values[i]);
    }
  } else {
    out->codes8_.resize(values.size());
    for (size_t i = 0; i < values.size(); ++i) {
      out->codes8_[i] = static_cast<uint8_t>(out->CodeOf(values[i]));
    }
  }
  return out;
}

std::unique_ptr<BinnedColumn> BinnedColumn::BindGathered(
    const Column& gathered) const {
  TS_CHECK(gathered.type() == DataType::kNumeric);
  auto out = std::unique_ptr<BinnedColumn>(new BinnedColumn());
  out->num_bins_ = num_bins_;
  out->upper_ = upper_;  // shared global boundaries
  out->wide_ = wide_;
  const std::vector<double>& values = gathered.numeric_values();
  if (wide_) {
    out->codes16_.resize(values.size());
    for (size_t i = 0; i < values.size(); ++i) {
      out->codes16_[i] = CodeOf(values[i]);
    }
  } else {
    out->codes8_.resize(values.size());
    for (size_t i = 0; i < values.size(); ++i) {
      out->codes8_[i] = static_cast<uint8_t>(CodeOf(values[i]));
    }
  }
  return out;
}

std::shared_ptr<const BinnedTable> BinnedTable::Build(const DataTable& table,
                                                      int max_bins) {
  auto out = std::shared_ptr<BinnedTable>(new BinnedTable());
  out->max_bins_ = ClampBins(max_bins);
  out->columns_.resize(table.num_columns());
  const int target = table.schema().target_index();
  for (int c = 0; c < table.num_columns(); ++c) {
    if (c == target) continue;
    const ColumnPtr& col = table.column(c);
    if (col == nullptr || col->type() != DataType::kNumeric) continue;
    out->columns_[c] = BinnedColumn::Build(*col, out->max_bins_);
  }
  return out;
}

std::shared_ptr<const BinnedTable> BinnedTable::BindGathered(
    const BinnedTable& global, const DataTable& gathered,
    const std::vector<int>& columns) {
  auto out = std::shared_ptr<BinnedTable>(new BinnedTable());
  out->max_bins_ = global.max_bins_;
  out->columns_.resize(gathered.num_columns());
  for (int c : columns) {
    const BinnedColumn* g = global.column(c);
    if (g == nullptr) continue;
    const ColumnPtr& col = gathered.column(c);
    if (col == nullptr || col->type() != DataType::kNumeric) continue;
    out->columns_[c] = g->BindGathered(*col);
  }
  return out;
}

size_t BinnedTable::ByteSize() const {
  size_t total = 0;
  for (const auto& c : columns_) {
    if (c != nullptr) total += c->ByteSize();
  }
  return total;
}

}  // namespace treeserver
