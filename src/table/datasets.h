#ifndef TREESERVER_TABLE_DATASETS_H_
#define TREESERVER_TABLE_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "table/data_table.h"

namespace treeserver {

/// Shape description of a benchmark dataset, mirroring Table I of the
/// paper. Generated tables plant a random tree-structured concept so
/// that (a) trees can actually learn the data, and (b) exact split
/// finding has a small but real accuracy edge over binned splits.
struct DatasetProfile {
  std::string name;
  size_t rows = 0;
  int num_numeric = 0;
  int num_categorical = 0;
  /// 0 => regression; otherwise the number of classes.
  int num_classes = 2;
  /// Fraction of feature cells blanked out (Allstate has missing data).
  double missing_fraction = 0.0;
  /// Label noise: flip probability (classification) or relative
  /// Gaussian noise on Y (regression).
  double noise = 0.1;
  /// Depth of the planted concept tree. Deep enough to reward deeper
  /// models, shallow enough to be learnable at bench scale.
  int concept_depth = 6;

  TaskKind task_kind() const {
    return num_classes == 0 ? TaskKind::kRegression
                            : TaskKind::kClassification;
  }
  int num_features() const { return num_numeric + num_categorical; }
};

/// The eleven Table I datasets, with row counts multiplied by `scale`
/// (the paper's clusters hold tens of millions of rows; benches default
/// to scale = 1/1000 to stay laptop-sized) and feature counts kept.
/// A floor of `min_rows` keeps tiny profiles statistically meaningful.
std::vector<DatasetProfile> PaperProfiles(double scale = 0.001,
                                          size_t min_rows = 4000);

/// Returns the profile with the given name from PaperProfiles(scale).
DatasetProfile PaperProfile(const std::string& name, double scale = 0.001,
                            size_t min_rows = 4000);

/// Generates a table for the profile. Deterministic in (profile, seed).
DataTable GenerateTable(const DatasetProfile& profile, uint64_t seed);

/// A small grayscale image classification set for the deep-forest case
/// study. Stands in for MNIST: 10 classes, each defined by a random
/// stroke-mask pattern, with per-pixel noise.
struct ImageDataset {
  int width = 28;
  int height = 28;
  int num_classes = 10;
  /// Row-major pixels in [0,1], images[i] has width*height entries.
  std::vector<std::vector<float>> images;
  std::vector<int32_t> labels;

  size_t size() const { return images.size(); }
};

/// Generates `n` images (28x28, 10 classes) deterministically.
ImageDataset GenerateImages(size_t n, uint64_t seed, int width = 28,
                            int height = 28, int num_classes = 10);

}  // namespace treeserver

#endif  // TREESERVER_TABLE_DATASETS_H_
