#include "baselines/planet.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <map>
#include <thread>

#include "common/logging.h"
#include "common/rng.h"
#include "tree/split.h"
#include "tree/trainer.h"

namespace treeserver {

namespace {

// ---------------------------------------------------------------------
// Attribute binning (PLANET's approximate equi-depth histograms).
// ---------------------------------------------------------------------

struct FeatureBins {
  bool categorical = false;
  int num_bins = 0;
  /// Numeric: boundaries[b] is the inclusive upper edge of bin b
  /// (last bin unbounded). Conditions use these raw values.
  std::vector<double> boundaries;
};

/// Returns the imputation value for a column (mean / most frequent).
double NumericMean(const Column& col) {
  double sum = 0.0;
  size_t n = 0;
  for (double v : col.numeric_values()) {
    if (!IsMissingNumeric(v)) {
      sum += v;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

int32_t CategoricalMode(const Column& col) {
  std::vector<int64_t> counts(std::max<int32_t>(col.cardinality(), 1), 0);
  for (int32_t c : col.categorical_codes()) {
    if (c != kMissingCategory) ++counts[c];
  }
  return static_cast<int32_t>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
}

FeatureBins BuildBins(const Column& col, int max_bins, double impute,
                      Rng* rng) {
  FeatureBins bins;
  if (col.type() == DataType::kCategorical) {
    bins.categorical = true;
    bins.num_bins = std::max<int32_t>(col.cardinality(), 1);
    return bins;
  }
  // Equi-depth boundaries from a sample of the column values.
  const auto& values = col.numeric_values();
  const size_t sample_target = 20000;
  std::vector<double> sample;
  sample.reserve(std::min(values.size(), sample_target));
  if (values.size() <= sample_target) {
    for (double v : values) sample.push_back(IsMissingNumeric(v) ? impute : v);
  } else {
    for (size_t i = 0; i < sample_target; ++i) {
      double v = values[rng->Uniform(values.size())];
      sample.push_back(IsMissingNumeric(v) ? impute : v);
    }
  }
  std::sort(sample.begin(), sample.end());
  sample.erase(std::unique(sample.begin(), sample.end()), sample.end());
  int bins_wanted = std::min<int>(max_bins, static_cast<int>(sample.size()));
  bins.num_bins = std::max(bins_wanted, 1);
  bins.boundaries.resize(bins.num_bins - 1);
  for (int b = 0; b + 1 < bins.num_bins; ++b) {
    size_t idx = (b + 1) * sample.size() / bins.num_bins;
    if (idx >= sample.size()) idx = sample.size() - 1;
    bins.boundaries[b] = sample[idx];
  }
  bins.boundaries.erase(
      std::unique(bins.boundaries.begin(), bins.boundaries.end()),
      bins.boundaries.end());
  bins.num_bins = static_cast<int>(bins.boundaries.size()) + 1;
  return bins;
}

int BinOf(const FeatureBins& bins, const Column& col, size_t row,
          double impute_num, int32_t impute_cat) {
  if (bins.categorical) {
    int32_t c = col.category_at(row);
    return c == kMissingCategory ? impute_cat : c;
  }
  double v = col.numeric_at(row);
  if (IsMissingNumeric(v)) v = impute_num;
  return static_cast<int>(std::upper_bound(bins.boundaries.begin(),
                                           bins.boundaries.end(), v) -
                          bins.boundaries.begin());
}

// ---------------------------------------------------------------------
// Per-(node, feature, bin) statistics.
// ---------------------------------------------------------------------

struct BinStatsLayout {
  bool classification = false;
  int num_classes = 0;
  /// Doubles per bin: classes (classification) or 3 (n, sum, sum_sq).
  int width() const { return classification ? num_classes : 3; }
};

// A flat buffer of stats for a group of frontier nodes. Layout:
// [node][feature][bin][width].
struct GroupStats {
  BinStatsLayout layout;
  std::vector<int> feature_offsets;  // per candidate feature, bin offset
  int bins_per_node = 0;
  std::vector<double> data;

  double* At(int node_slot, int feature_slot, int bin) {
    return data.data() +
           (static_cast<size_t>(node_slot) * bins_per_node +
            feature_offsets[feature_slot] + bin) *
               layout.width();
  }
};

struct FrontierNode {
  int tree = 0;
  int32_t node_id = 0;
  int depth = 0;
};

}  // namespace

ForestModel TrainPlanet(const DataTable& table, const PlanetConfig& config,
                        PlanetStats* stats_out) {
  const Schema& schema = table.schema();
  const bool classification = schema.task_kind() == TaskKind::kClassification;
  const int num_classes = schema.num_classes();
  const size_t n = table.num_rows();
  Rng rng(config.seed * 0x9E3779B97F4A7C15ULL + 17);

  PlanetStats stats;

  // ---- Data prep: imputation values + histogram bins per feature.
  std::vector<int> features = schema.FeatureIndices();
  std::vector<double> impute_num(schema.num_columns(), 0.0);
  std::vector<int32_t> impute_cat(schema.num_columns(), 0);
  std::vector<FeatureBins> bins(schema.num_columns());
  for (int f : features) {
    const Column& col = *table.column(f);
    if (col.type() == DataType::kNumeric) {
      impute_num[f] = NumericMean(col);
    } else {
      impute_cat[f] = CategoricalMode(col);
    }
    bins[f] = BuildBins(col, config.max_bins, impute_num[f], &rng);
  }

  // Pre-binned matrix (what MLlib's TreePoint representation does).
  std::vector<std::vector<uint16_t>> binned(schema.num_columns());
  for (int f : features) {
    binned[f].resize(n);
    const Column& col = *table.column(f);
    for (size_t i = 0; i < n; ++i) {
      binned[f][i] = static_cast<uint16_t>(
          BinOf(bins[f], col, i, impute_num[f], impute_cat[f]));
    }
  }

  // Targets.
  std::vector<int32_t> labels;
  std::vector<double> targets;
  if (classification) {
    labels.resize(n);
    for (size_t i = 0; i < n; ++i) labels[i] = table.label_at(i);
  } else {
    targets.resize(n);
    for (size_t i = 0; i < n; ++i) targets[i] = table.target_value_at(i);
  }

  // ---- Per-tree state.
  ForestJobSpec sampling;
  sampling.seed = config.seed;
  sampling.column_ratio = config.column_ratio;
  sampling.sqrt_columns = config.sqrt_columns;

  struct TreeUnderConstruction {
    TreeModel model;
    std::vector<int> candidates;
    std::vector<int32_t> assign;  // row -> active node id; -1 done
  };
  std::vector<TreeUnderConstruction> trees(config.num_trees);
  std::vector<FrontierNode> frontier;
  for (int t = 0; t < config.num_trees; ++t) {
    trees[t].model = TreeModel(schema.task_kind(), num_classes);
    trees[t].model.AddNode(TreeModel::Node{});
    trees[t].candidates = sampling.SampleColumns(schema, t);
    trees[t].assign.assign(n, 0);
    frontier.push_back(FrontierNode{t, 0, 0});
  }

  const BinStatsLayout layout{classification, num_classes};
  const int num_partitions = std::max(config.num_partitions, 1);
  const int num_threads = std::max(config.num_threads, 1);

  // ---- Level-by-level construction (the PLANET/MapReduce pattern):
  // each level of every active tree is one (or more) aggregation jobs.
  while (!frontier.empty()) {
    // Group frontier nodes under the statistics-memory budget.
    std::vector<std::vector<FrontierNode>> groups;
    {
      std::vector<FrontierNode> current;
      size_t current_bytes = 0;
      for (const FrontierNode& fn : frontier) {
        size_t node_bytes = 0;
        for (int f : trees[fn.tree].candidates) {
          node_bytes += static_cast<size_t>(bins[f].num_bins) *
                        layout.width() * sizeof(double);
        }
        if (!current.empty() &&
            current_bytes + node_bytes > config.group_memory_bytes) {
          groups.push_back(std::move(current));
          current.clear();
          current_bytes = 0;
        }
        current.push_back(fn);
        current_bytes += node_bytes;
      }
      if (!current.empty()) groups.push_back(std::move(current));
    }

    std::vector<FrontierNode> next_frontier;
    for (const std::vector<FrontierNode>& group : groups) {
      ++stats.levels;
      // Simulated Spark job launch latency.
      if (config.job_overhead_ms > 0) {
        double seconds = config.job_overhead_ms / 1e3 * config.time_scale;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(seconds));
        stats.simulated_overhead_seconds += seconds;
      }

      // Slot maps for the flat stats buffer. All trees in the group
      // share the widest candidate layout for simplicity: per node we
      // lay out that node's own tree's candidates.
      // For indexing we use per-tree feature slots.
      std::map<std::pair<int, int32_t>, int> node_slot;
      size_t total_bins = 0;
      std::vector<size_t> node_offset;  // per slot, in bins
      std::vector<const std::vector<int>*> node_candidates;
      for (const FrontierNode& fn : group) {
        node_slot[{fn.tree, fn.node_id}] =
            static_cast<int>(node_offset.size());
        node_offset.push_back(total_bins);
        node_candidates.push_back(&trees[fn.tree].candidates);
        for (int f : trees[fn.tree].candidates) {
          total_bins += static_cast<size_t>(bins[f].num_bins);
        }
      }
      const size_t stats_doubles = total_bins * layout.width();

      // Per-thread accumulation buffers over row partitions, then a
      // reduction — modelling the map-side combine + shuffle.
      // Per-tree node->slot lookup so the row scan touches only the
      // trees present in this group.
      std::map<int, std::map<int32_t, int>> tree_slots;
      for (const auto& [key, slot] : node_slot) {
        tree_slots[key.first][key.second] = slot;
      }

      std::vector<std::vector<double>> partials(num_threads);
      std::atomic<int> next_partition{0};
      auto accumulate = [&](int thread_idx) {
        std::vector<double>& acc = partials[thread_idx];
        acc.assign(stats_doubles, 0.0);
        for (int p = next_partition.fetch_add(1); p < num_partitions;
             p = next_partition.fetch_add(1)) {
          size_t begin = n * p / num_partitions;
          size_t end = n * (p + 1) / num_partitions;
          for (const auto& [t, slots] : tree_slots) {
            const std::vector<int32_t>& assign = trees[t].assign;
            for (size_t i = begin; i < end; ++i) {
              auto it = slots.find(assign[i]);
              if (it == slots.end()) continue;
              const int slot = it->second;
              size_t bin_base = node_offset[slot];
              for (int f : *node_candidates[slot]) {
                size_t idx = (bin_base + binned[f][i]) * layout.width();
                if (classification) {
                  acc[idx + labels[i]] += 1.0;
                } else {
                  acc[idx + 0] += 1.0;
                  acc[idx + 1] += targets[i];
                  acc[idx + 2] += targets[i] * targets[i];
                }
                bin_base += bins[f].num_bins;
              }
            }
          }
        }
      };
      if (num_threads == 1) {
        accumulate(0);
      } else {
        std::vector<std::thread> pool;
        for (int th = 0; th < num_threads; ++th) {
          pool.emplace_back(accumulate, th);
        }
        for (std::thread& th : pool) th.join();
      }
      std::vector<double>& agg = partials[0];
      for (int th = 1; th < num_threads; ++th) {
        for (size_t i = 0; i < stats_doubles; ++i) agg[i] += partials[th][i];
      }

      // Shuffle accounting: every partition ships its stats to the
      // driver for aggregation.
      uint64_t shuffle_bytes = static_cast<uint64_t>(stats_doubles) *
                               sizeof(double) * num_partitions;
      stats.bytes_shuffled += shuffle_bytes;
      if (config.shuffle_bandwidth_mbps > 0) {
        double seconds = static_cast<double>(shuffle_bytes) /
                         (config.shuffle_bandwidth_mbps * 1e6 / 8.0) *
                         config.time_scale;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(seconds));
        stats.simulated_overhead_seconds += seconds;
      }

      // ---- Split selection per node from the aggregated histograms.
      for (const FrontierNode& fn : group) {
        int slot = node_slot[{fn.tree, fn.node_id}];
        TreeUnderConstruction& tuc = trees[fn.tree];

        // Node statistics from the first candidate feature's bins.
        TargetStats node_stats = classification
                                     ? TargetStats::Classification(num_classes)
                                     : TargetStats::Regression();
        {
          size_t bin_base = node_offset[slot];
          int f0 = (*node_candidates[slot])[0];
          for (int b = 0; b < bins[f0].num_bins; ++b) {
            const double* cell = &agg[(bin_base + b) * layout.width()];
            if (classification) {
              for (int c = 0; c < num_classes; ++c) {
                node_stats.cls.Add(c, static_cast<int64_t>(cell[c]));
              }
            } else {
              node_stats.reg.n += static_cast<int64_t>(cell[0]);
              node_stats.reg.sum += cell[1];
              node_stats.reg.sum_sq += cell[2];
            }
          }
        }

        TreeModel::Node& node = tuc.model.mutable_node(fn.node_id);
        node.depth = static_cast<uint16_t>(fn.depth);
        FillNodePrediction(node_stats, &node);

        bool leaf = fn.depth >= config.max_depth ||
                    node_stats.Count() <=
                        static_cast<int64_t>(config.min_leaf) ||
                    node_stats.IsPure();
        SplitOutcome best;
        if (!leaf) {
          size_t bin_base = node_offset[slot];
          for (int f : *node_candidates[slot]) {
            const FeatureBins& fb = bins[f];
            // Materialize per-bin stats.
            std::vector<TargetStats> bin_stats(
                fb.num_bins, classification
                                 ? TargetStats::Classification(num_classes)
                                 : TargetStats::Regression());
            for (int b = 0; b < fb.num_bins; ++b) {
              const double* cell = &agg[(bin_base + b) * layout.width()];
              if (classification) {
                for (int c = 0; c < num_classes; ++c) {
                  bin_stats[b].cls.Add(c, static_cast<int64_t>(cell[c]));
                }
              } else {
                bin_stats[b].reg.n += static_cast<int64_t>(cell[0]);
                bin_stats[b].reg.sum += cell[1];
                bin_stats[b].reg.sum_sq += cell[2];
              }
            }
            bin_base += fb.num_bins;

            const double total_n = static_cast<double>(node_stats.Count());
            const double parent_imp =
                node_stats.ImpurityValue(config.impurity);
            auto consider = [&](TargetStats left, TargetStats right,
                                SplitCondition cond) {
              if (left.Count() == 0 || right.Count() == 0) return;
              double child =
                  (static_cast<double>(left.Count()) *
                       left.ImpurityValue(config.impurity) +
                   static_cast<double>(right.Count()) *
                       right.ImpurityValue(config.impurity)) /
                  total_n;
              double gain = parent_imp - child;
              SplitOutcome cand;
              cand.valid = true;
              cand.gain = gain;
              cand.condition = std::move(cond);
              cand.condition.missing_to_left = left.Count() >= right.Count();
              cand.left_stats = std::move(left);
              cand.right_stats = std::move(right);
              if (SplitBeats(cand, best)) best = std::move(cand);
            };

            if (!fb.categorical) {
              // Prefix scan over bin boundaries: one candidate split
              // value per bucket (the PLANET approximation).
              TargetStats left = classification
                                     ? TargetStats::Classification(num_classes)
                                     : TargetStats::Regression();
              TargetStats right = node_stats;
              for (int b = 0; b + 1 < fb.num_bins; ++b) {
                left.Merge(bin_stats[b]);
                if (classification) {
                  for (size_t c = 0; c < right.cls.counts.size(); ++c) {
                    right.cls.counts[c] -= bin_stats[b].cls.counts[c];
                  }
                  right.cls.n -= bin_stats[b].cls.n;
                } else {
                  right.reg.n -= bin_stats[b].reg.n;
                  right.reg.sum -= bin_stats[b].reg.sum;
                  right.reg.sum_sq -= bin_stats[b].reg.sum_sq;
                }
                SplitCondition cond;
                cond.column = f;
                cond.type = DataType::kNumeric;
                cond.threshold = fb.boundaries[b];
                consider(left, right, std::move(cond));
              }
            } else if (classification) {
              // One-vs-rest over categories (= bins).
              std::vector<int32_t> seen;
              for (int b = 0; b < fb.num_bins; ++b) {
                if (bin_stats[b].Count() > 0) seen.push_back(b);
              }
              for (int32_t c : seen) {
                TargetStats left = bin_stats[c];
                TargetStats right = node_stats;
                for (size_t k = 0; k < right.cls.counts.size(); ++k) {
                  right.cls.counts[k] -= left.cls.counts[k];
                }
                right.cls.n -= left.cls.n;
                SplitCondition cond;
                cond.column = f;
                cond.type = DataType::kCategorical;
                cond.left_categories = {c};
                cond.seen_categories = seen;
                consider(std::move(left), std::move(right), std::move(cond));
              }
            } else {
              // Breiman: categories sorted by mean, prefix cuts.
              std::vector<int32_t> seen;
              for (int b = 0; b < fb.num_bins; ++b) {
                if (bin_stats[b].Count() > 0) seen.push_back(b);
              }
              std::vector<int32_t> order = seen;
              std::sort(order.begin(), order.end(),
                        [&](int32_t a, int32_t b) {
                          return bin_stats[a].reg.Mean() <
                                 bin_stats[b].reg.Mean();
                        });
              TargetStats left = TargetStats::Regression();
              for (size_t i = 0; i + 1 < order.size(); ++i) {
                left.Merge(bin_stats[order[i]]);
                TargetStats right = node_stats;
                right.reg.n -= left.reg.n;
                right.reg.sum -= left.reg.sum;
                right.reg.sum_sq -= left.reg.sum_sq;
                std::vector<int32_t> left_cats(order.begin(),
                                               order.begin() + i + 1);
                std::sort(left_cats.begin(), left_cats.end());
                SplitCondition cond;
                cond.column = f;
                cond.type = DataType::kCategorical;
                cond.left_categories = std::move(left_cats);
                cond.seen_categories = seen;
                consider(left, right, std::move(cond));
              }
            }
          }
          if (!best.valid || best.gain <= kMinSplitGain) leaf = true;
        }

        if (leaf) {
          for (size_t i = 0; i < n; ++i) {
            if (tuc.assign[i] == fn.node_id) tuc.assign[i] = -1;
          }
          continue;
        }

        // Install the split and two child placeholders.
        TreeModel::Node left_child;
        left_child.depth = static_cast<uint16_t>(fn.depth + 1);
        TreeModel::Node right_child;
        right_child.depth = static_cast<uint16_t>(fn.depth + 1);
        int32_t left_id = tuc.model.AddNode(std::move(left_child));
        int32_t right_id = tuc.model.AddNode(std::move(right_child));
        TreeModel::Node& parent = tuc.model.mutable_node(fn.node_id);
        parent.condition = best.condition;
        parent.split_gain = best.gain;
        parent.left = left_id;
        parent.right = right_id;

        // Route rows to the children.
        const SplitCondition& cond = best.condition;
        const Column& col = *table.column(cond.column);
        for (size_t i = 0; i < n; ++i) {
          if (tuc.assign[i] != fn.node_id) continue;
          bool go_left;
          if (cond.type == DataType::kNumeric) {
            double v = col.numeric_at(i);
            if (IsMissingNumeric(v)) v = impute_num[cond.column];
            go_left = cond.TrainRoutesLeftNumeric(v);
          } else {
            int32_t c = col.category_at(i);
            if (c == kMissingCategory) c = impute_cat[cond.column];
            go_left = cond.TrainRoutesLeftCategory(c);
          }
          tuc.assign[i] = go_left ? left_id : right_id;
        }
        next_frontier.push_back(FrontierNode{fn.tree, left_id, fn.depth + 1});
        next_frontier.push_back(
            FrontierNode{fn.tree, right_id, fn.depth + 1});
      }
    }
    frontier = std::move(next_frontier);
  }

  ForestModel model(schema.task_kind(), num_classes);
  for (TreeUnderConstruction& t : trees) model.AddTree(std::move(t.model));
  if (stats_out != nullptr) *stats_out = stats;
  return model;
}

}  // namespace treeserver
