#include "baselines/gbdt.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>

#include "common/logging.h"
#include "common/rng.h"

namespace treeserver {

namespace {

/// Ordinal view of any feature cell: numeric value, category code as a
/// double, or NaN for missing.
double FeatureValue(const DataTable& table, int col, size_t row) {
  const Column& c = *table.column(col);
  if (c.type() == DataType::kNumeric) return c.numeric_at(row);
  int32_t code = c.category_at(row);
  return code == kMissingCategory ? MissingNumeric()
                                  : static_cast<double>(code);
}

struct GradPair {
  double g = 0.0;
  double h = 0.0;
  void Add(const GradPair& o) {
    g += o.g;
    h += o.h;
  }
  void Sub(const GradPair& o) {
    g -= o.g;
    h -= o.h;
  }
};

double LeafWeight(const GradPair& sum, double lambda) {
  return -sum.g / (sum.h + lambda);
}

double ScoreTerm(const GradPair& sum, double lambda) {
  return sum.g * sum.g / (sum.h + lambda);
}

/// The weighted quantile sketch: candidate thresholds per feature,
/// chosen at even hessian-mass steps over the sorted feature values.
std::vector<double> QuantileCandidates(const DataTable& table, int col,
                                       const std::vector<GradPair>& grad,
                                       int max_candidates) {
  std::vector<std::pair<double, double>> vh;  // (value, hessian)
  vh.reserve(table.num_rows());
  for (size_t i = 0; i < table.num_rows(); ++i) {
    double v = FeatureValue(table, col, i);
    if (!IsMissingNumeric(v)) vh.push_back({v, grad[i].h});
  }
  if (vh.size() < 2) return {};
  std::sort(vh.begin(), vh.end());
  double total_h = 0.0;
  for (const auto& [v, h] : vh) total_h += h;
  if (total_h <= 0.0) return {};

  std::vector<double> candidates;
  double step = total_h / (max_candidates + 1);
  double acc = 0.0;
  double next = step;
  for (size_t i = 0; i + 1 < vh.size(); ++i) {
    acc += vh[i].second;
    if (acc >= next && vh[i].first != vh[i + 1].first) {
      candidates.push_back(vh[i].first);
      while (next <= acc) next += step;
    }
  }
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  return candidates;
}

struct BestSplit {
  bool valid = false;
  int feature = -1;
  double threshold = 0.0;
  bool missing_left = true;
  double gain = 0.0;
};

struct TreeBuilder {
  const DataTable& table;
  const GbdtConfig& config;
  const std::vector<GradPair>& grad;
  const std::vector<int>& features;
  const std::vector<std::vector<double>>& candidates;  // per feature slot
  GbdtTree* tree;

  BestSplit FindSplit(const uint32_t* rows, size_t n,
                      const GradPair& total) const {
    BestSplit best;
    const double lambda = config.lambda;
    const double parent_term = ScoreTerm(total, lambda);

    auto eval_feature = [&](size_t slot, BestSplit* out) {
      const std::vector<double>& cuts = candidates[slot];
      if (cuts.empty()) return;
      const int col = features[slot];
      std::vector<GradPair> bins(cuts.size() + 1);
      GradPair missing;
      for (size_t i = 0; i < n; ++i) {
        double v = FeatureValue(table, col, rows[i]);
        if (IsMissingNumeric(v)) {
          missing.Add(grad[rows[i]]);
          continue;
        }
        size_t b = std::upper_bound(cuts.begin(), cuts.end(), v) -
                   cuts.begin();
        bins[b].Add(grad[rows[i]]);
      }
      GradPair left;
      for (size_t cut = 0; cut < cuts.size(); ++cut) {
        left.Add(bins[cut]);
        // Try both default directions for missing values (XGBoost's
        // learned sparsity-aware default).
        for (bool miss_left : {true, false}) {
          GradPair l = left;
          GradPair r = total;
          if (miss_left) {
            l.Add(missing);
          }
          r.Sub(l);
          if (l.h <= 0.0 || r.h <= 0.0) continue;
          double gain = 0.5 * (ScoreTerm(l, lambda) + ScoreTerm(r, lambda) -
                               parent_term) -
                        config.gamma;
          if (gain > out->gain || !out->valid) {
            if (gain <= 0.0) continue;
            out->valid = true;
            out->feature = col;
            out->threshold = cuts[cut];
            out->missing_left = miss_left;
            out->gain = gain;
          }
        }
      }
    };

    if (config.num_threads <= 1 || features.size() < 2) {
      for (size_t slot = 0; slot < features.size(); ++slot) {
        BestSplit cand;
        eval_feature(slot, &cand);
        if (cand.valid && (!best.valid || cand.gain > best.gain ||
                           (cand.gain == best.gain &&
                            cand.feature < best.feature))) {
          best = cand;
        }
      }
    } else {
      std::vector<BestSplit> results(features.size());
      std::vector<std::thread> pool;
      std::atomic<size_t> next{0};
      int workers = std::min<int>(config.num_threads,
                                  static_cast<int>(features.size()));
      for (int w = 0; w < workers; ++w) {
        pool.emplace_back([&] {
          for (size_t slot = next.fetch_add(1); slot < features.size();
               slot = next.fetch_add(1)) {
            eval_feature(slot, &results[slot]);
          }
        });
      }
      for (std::thread& th : pool) th.join();
      for (const BestSplit& cand : results) {
        if (cand.valid && (!best.valid || cand.gain > best.gain ||
                           (cand.gain == best.gain &&
                            cand.feature < best.feature))) {
          best = cand;
        }
      }
    }
    return best;
  }

  int32_t Build(std::vector<uint32_t>* rows, size_t begin, size_t end,
                int depth) {
    GradPair total;
    for (size_t i = begin; i < end; ++i) total.Add(grad[(*rows)[i]]);

    int32_t id = static_cast<int32_t>(tree->nodes.size());
    tree->nodes.emplace_back();
    const size_t n = end - begin;
    if (depth >= config.max_depth || n <= config.min_leaf) {
      tree->nodes[id].weight =
          config.learning_rate * LeafWeight(total, config.lambda);
      return id;
    }
    BestSplit best = FindSplit(rows->data() + begin, n, total);
    if (!best.valid) {
      tree->nodes[id].weight =
          config.learning_rate * LeafWeight(total, config.lambda);
      return id;
    }

    // Partition (stable) by the chosen condition.
    std::vector<uint32_t> right_rows;
    size_t write = begin;
    for (size_t i = begin; i < end; ++i) {
      uint32_t row = (*rows)[i];
      double v = FeatureValue(table, best.feature, row);
      bool go_left = IsMissingNumeric(v) ? best.missing_left
                                         : v <= best.threshold;
      if (go_left) {
        (*rows)[write++] = row;
      } else {
        right_rows.push_back(row);
      }
    }
    std::copy(right_rows.begin(), right_rows.end(), rows->begin() + write);
    const size_t mid = write;
    if (mid == begin || mid == end) {
      // Degenerate split (all candidates on one side): make a leaf.
      tree->nodes[id].weight =
          config.learning_rate * LeafWeight(total, config.lambda);
      return id;
    }

    tree->nodes[id].feature = best.feature;
    tree->nodes[id].threshold = best.threshold;
    tree->nodes[id].missing_left = best.missing_left;
    int32_t left = Build(rows, begin, mid, depth + 1);
    int32_t right = Build(rows, mid, end, depth + 1);
    tree->nodes[id].left = left;
    tree->nodes[id].right = right;
    return id;
  }
};

}  // namespace

double GbdtTree::Predict(const DataTable& table, size_t row) const {
  int32_t id = 0;
  while (nodes[id].feature >= 0) {
    const Node& node = nodes[id];
    double v = FeatureValue(table, node.feature, row);
    bool go_left =
        IsMissingNumeric(v) ? node.missing_left : v <= node.threshold;
    id = go_left ? node.left : node.right;
  }
  return nodes[id].weight;
}

std::vector<double> GbdtModel::Margins(const DataTable& table,
                                       size_t row) const {
  std::vector<double> m(group_size_, base_score_);
  for (size_t i = 0; i < trees_.size(); ++i) {
    m[i % group_size_] += trees_[i].Predict(table, row);
  }
  return m;
}

int32_t GbdtModel::PredictLabel(const DataTable& table, size_t row) const {
  std::vector<double> m = Margins(table, row);
  if (group_size_ == 1) return m[0] > 0.0 ? 1 : 0;  // binary logistic
  return static_cast<int32_t>(std::max_element(m.begin(), m.end()) -
                              m.begin());
}

double GbdtModel::PredictValue(const DataTable& table, size_t row) const {
  return Margins(table, row)[0];
}

double GbdtModel::Evaluate(const DataTable& test) const {
  if (kind_ == TaskKind::kClassification) {
    size_t correct = 0;
    for (size_t i = 0; i < test.num_rows(); ++i) {
      if (PredictLabel(test, i) == test.label_at(i)) ++correct;
    }
    return test.num_rows() == 0
               ? 0.0
               : static_cast<double>(correct) / test.num_rows();
  }
  double sq = 0.0;
  for (size_t i = 0; i < test.num_rows(); ++i) {
    double d = PredictValue(test, i) - test.target_value_at(i);
    sq += d * d;
  }
  return test.num_rows() == 0 ? 0.0 : std::sqrt(sq / test.num_rows());
}

GbdtModel TrainGbdt(const DataTable& table, const GbdtConfig& config) {
  const Schema& schema = table.schema();
  const size_t n = table.num_rows();
  const bool classification =
      schema.task_kind() == TaskKind::kClassification;
  const int k = classification ? std::max(schema.num_classes(), 2) : 1;
  const bool binary = classification && k == 2;

  GbdtModel model;
  model.kind_ = schema.task_kind();
  model.num_classes_ = schema.num_classes();
  model.group_size_ = classification && !binary ? k : 1;
  model.learning_rate_ = config.learning_rate;

  // Base score: mean target for regression, zero margin otherwise.
  if (!classification) {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) sum += table.target_value_at(i);
    model.base_score_ = n == 0 ? 0.0 : sum / static_cast<double>(n);
  }

  std::vector<int> features = schema.FeatureIndices();
  const int groups = model.group_size_;

  // Current margins, [row][class-group].
  std::vector<std::vector<double>> margins(
      groups, std::vector<double>(n, model.base_score_));

  std::vector<GradPair> grad(n);
  for (int round = 0; round < config.num_rounds; ++round) {
    for (int g = 0; g < groups; ++g) {
      // Gradients/hessians of the objective at the current margins.
      for (size_t i = 0; i < n; ++i) {
        if (!classification) {
          grad[i].g = margins[0][i] - table.target_value_at(i);
          grad[i].h = 1.0;
        } else if (binary) {
          double p = 1.0 / (1.0 + std::exp(-margins[0][i]));
          double y = table.label_at(i) == 1 ? 1.0 : 0.0;
          grad[i].g = p - y;
          grad[i].h = std::max(p * (1.0 - p), 1e-16);
        } else {
          // Softmax over the k margins.
          double max_m = margins[0][i];
          for (int c = 1; c < groups; ++c) {
            max_m = std::max(max_m, margins[c][i]);
          }
          double denom = 0.0;
          for (int c = 0; c < groups; ++c) {
            denom += std::exp(margins[c][i] - max_m);
          }
          double p = std::exp(margins[g][i] - max_m) / denom;
          double y = table.label_at(i) == g ? 1.0 : 0.0;
          grad[i].g = p - y;
          grad[i].h = std::max(2.0 * p * (1.0 - p), 1e-16);
        }
      }

      // Per-tree quantile sketch.
      std::vector<std::vector<double>> candidates(features.size());
      for (size_t slot = 0; slot < features.size(); ++slot) {
        candidates[slot] = QuantileCandidates(table, features[slot], grad,
                                              config.max_candidates);
      }

      GbdtTree tree;
      TreeBuilder builder{table, config, grad, features, candidates, &tree};
      std::vector<uint32_t> rows(n);
      for (size_t i = 0; i < n; ++i) rows[i] = static_cast<uint32_t>(i);
      builder.Build(&rows, 0, n, 0);
      for (size_t i = 0; i < n; ++i) {
        margins[g][i] += tree.Predict(table, i);
      }
      model.trees_.push_back(std::move(tree));
    }
  }
  return model;
}

}  // namespace treeserver
