#ifndef TREESERVER_BASELINES_PLANET_H_
#define TREESERVER_BASELINES_PLANET_H_

#include <cstdint>
#include <vector>

#include "forest/forest.h"
#include "table/data_table.h"

namespace treeserver {

/// Configuration of the PLANET / Spark-MLlib baseline simulator.
///
/// The simulator reproduces the *algorithm class* the paper compares
/// against: row-partitioned data, level-by-level (breadth-first)
/// node construction, equi-depth histograms with `max_bins` buckets
/// per attribute (approximate split finding), and per-level global
/// aggregation of statistics. The costs Spark pays that a native
/// in-process loop does not — per-job scheduling latency and the
/// statistics shuffle over the interconnect — are charged explicitly
/// (`job_overhead_ms`, `shuffle_bandwidth_mbps`), since they are what
/// makes PLANET IO-bound in the paper's measurements.
struct PlanetConfig {
  /// maxBins: buckets of the attribute-value histogram (MLlib default).
  int max_bins = 32;
  int max_depth = 10;
  uint32_t min_leaf = 1;
  Impurity impurity = Impurity::kGini;

  int num_trees = 1;
  /// |C|/|A| per tree (1.0 for a plain decision tree; MLlib RF uses
  /// sqrt).
  double column_ratio = 1.0;
  bool sqrt_columns = false;
  uint64_t seed = 1;

  /// Row partitions (the simulated "machines"/RDD partitions).
  int num_partitions = 15;
  /// Threads used for per-level histogram computation: >1 = the
  /// paper's "MLlib (Parallel)", 1 = "MLlib (Single Thread)".
  int num_threads = 1;

  /// Simulated Spark job-launch + task-scheduling latency per
  /// level-group job.
  double job_overhead_ms = 15.0;
  /// Simulated interconnect bandwidth for the per-level statistics
  /// aggregation; 0 disables the charge.
  double shuffle_bandwidth_mbps = 941.0;
  /// Statistics-memory budget per level group, in bytes (Spark's
  /// maxMemoryInMB); a level whose histogram state exceeds it is
  /// processed in several group passes, each paying the job overhead.
  size_t group_memory_bytes = 256ull << 20;

  /// Multiplier applied to every simulated sleep (job overhead and
  /// shuffle). job_overhead_ms and shuffle_bandwidth_mbps are
  /// expressed at the paper's full cluster scale; benches running on
  /// 1/N-scale data set time_scale ≈ 1/N so that simulated Spark costs
  /// shrink by the same factor as the real computation, preserving the
  /// TreeServer-vs-MLlib time *ratios*.
  double time_scale = 1.0;

  /// MLlib does not handle missing values; callers must impute first
  /// (the harness fills with column means, like the paper did for
  /// Allstate). If this flag is set the trainer imputes internally.
  bool impute_missing = true;
};

/// Aggregate cost accounting of one training run.
struct PlanetStats {
  int levels = 0;          // level-group jobs launched
  uint64_t bytes_shuffled = 0;
  double simulated_overhead_seconds = 0.0;
};

/// Trains a forest with the PLANET/MLlib algorithm. The returned trees
/// use the same TreeModel representation as TreeServer, so evaluation
/// is shared. `stats`, if non-null, receives the cost accounting.
ForestModel TrainPlanet(const DataTable& table, const PlanetConfig& config,
                        PlanetStats* stats = nullptr);

}  // namespace treeserver

#endif  // TREESERVER_BASELINES_PLANET_H_
