#ifndef TREESERVER_BASELINES_GBDT_H_
#define TREESERVER_BASELINES_GBDT_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "table/data_table.h"

namespace treeserver {

/// Configuration of the gradient-boosted-trees baseline.
///
/// Stands in for XGBoost in the paper's comparisons: second-order
/// (Newton) boosting on a regularized objective, approximate split
/// finding over per-tree quantile candidate sets (the weighted
/// quantile sketch), and — crucially for the running-time shape —
/// strictly sequential tree construction (boosting dependencies).
struct GbdtConfig {
  /// Boosting rounds. For K-class problems each round trains K trees
  /// (one-vs-rest with softmax), the standard multiclass scheme.
  int num_rounds = 100;
  int max_depth = 10;
  double learning_rate = 0.3;
  /// L2 regularization on leaf weights (XGBoost lambda).
  double lambda = 1.0;
  /// Minimum gain to split (XGBoost gamma).
  double gamma = 0.0;
  /// Candidate split values per feature per tree (sketch size).
  int max_candidates = 32;
  /// Threads used for per-node split finding across features.
  int num_threads = 1;
  uint32_t min_leaf = 1;
  uint64_t seed = 1;
};

/// One regression tree over (gradient, hessian) pairs. Categorical
/// features are consumed through their integer codes (ordinal
/// encoding), as XGBoost classically requires.
struct GbdtTree {
  struct Node {
    int feature = -1;  // -1: leaf
    double threshold = 0.0;
    bool missing_left = true;
    int32_t left = -1;
    int32_t right = -1;
    double weight = 0.0;  // leaf output
  };
  std::vector<Node> nodes;

  double Predict(const DataTable& table, size_t row) const;
};

/// A trained boosted ensemble.
class GbdtModel {
 public:
  GbdtModel() = default;

  TaskKind kind() const { return kind_; }
  int num_classes() const { return num_classes_; }
  size_t num_trees() const { return trees_.size(); }

  /// Raw margin scores per class (size 1 for regression/binary).
  std::vector<double> Margins(const DataTable& table, size_t row) const;
  int32_t PredictLabel(const DataTable& table, size_t row) const;
  double PredictValue(const DataTable& table, size_t row) const;

  /// Accuracy (classification) or RMSE (regression).
  double Evaluate(const DataTable& test) const;

 private:
  friend GbdtModel TrainGbdt(const DataTable&, const GbdtConfig&);

  TaskKind kind_ = TaskKind::kRegression;
  int num_classes_ = 0;
  int group_size_ = 1;  // trees per round
  double base_score_ = 0.0;
  double learning_rate_ = 0.3;
  std::vector<GbdtTree> trees_;  // round-major, class-minor
};

/// Trains the boosted ensemble. Squared loss for regression, logistic
/// loss for binary classification, softmax for multiclass.
GbdtModel TrainGbdt(const DataTable& table, const GbdtConfig& config);

}  // namespace treeserver

#endif  // TREESERVER_BASELINES_GBDT_H_
